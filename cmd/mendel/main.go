// Command mendel is the client CLI for a TCP Mendel cluster: it indexes
// FASTA data onto running mendel-node processes, saves the coordinator
// manifest, and evaluates alignment queries against a previously indexed
// cluster.
//
// Typical session (nodes started beforehand with cmd/mendel-node):
//
//	mendel index -nodes 127.0.0.1:7946,127.0.0.1:7947 -groups 2 \
//	    -kind protein -fasta nr.fasta -manifest cluster.mendel
//	mendel query -manifest cluster.mendel -fasta queries.fasta
//	mendel stats -manifest cluster.mendel
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"mendel"
	"mendel/internal/seq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "index":
		cmdIndex(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mendel <command> [flags]

commands:
  index   fragment and index a FASTA file onto running storage nodes
  query   evaluate alignment queries against an indexed cluster
  stats   print per-node storage statistics`)
	os.Exit(2)
}

// resilienceFlags registers the RPC resilience flags shared by every
// subcommand and returns a function assembling the config after parsing.
func resilienceFlags(fs *flag.FlagSet) func() mendel.ResilienceConfig {
	def := mendel.DefaultResilienceConfig()
	timeout := fs.Duration("rpc-timeout", def.CallTimeout, "per-RPC timeout (0 disables)")
	retries := fs.Int("rpc-retries", def.MaxRetries, "retries per RPC on unreachable nodes")
	trip := fs.Int("breaker-trip", def.TripAfter, "consecutive failures that trip a node's circuit breaker (0 disables)")
	cooldown := fs.Duration("breaker-cooldown", def.Cooldown, "circuit breaker cooldown before a half-open probe")
	return func() mendel.ResilienceConfig {
		def.CallTimeout = *timeout
		def.MaxRetries = *retries
		def.TripAfter = *trip
		def.Cooldown = *cooldown
		return def
	}
}

func cmdIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	nodeList := fs.String("nodes", "", "comma-separated storage node addresses (required)")
	groups := fs.Int("groups", 2, "number of storage groups")
	kindName := fs.String("kind", "protein", "molecule kind: protein or dna")
	fasta := fs.String("fasta", "", "FASTA file with reference sequences (required)")
	manifest := fs.String("manifest", "cluster.mendel", "manifest file to create or extend")
	blockLen := fs.Int("block", 16, "inverted index block length w")
	resilience := resilienceFlags(fs)
	fs.Parse(args)
	if *nodeList == "" && !fileExists(*manifest) {
		log.Fatal("mendel index: -nodes is required for a new cluster")
	}
	if *fasta == "" {
		log.Fatal("mendel index: -fasta is required")
	}

	kind := parseKind(*kindName)
	var cluster *mendel.Cluster
	var rpc *mendel.ResilientCaller
	if fileExists(*manifest) {
		cluster, rpc = loadManifest(*manifest, resilience())
	} else {
		cfg := mendel.DefaultConfig(kind)
		cfg.Groups = *groups
		cfg.BlockLen = *blockLen
		nodes := strings.Split(*nodeList, ",")
		groupLists, err := splitGroups(nodes, *groups)
		if err != nil {
			log.Fatalf("mendel index: %v", err)
		}
		cluster, rpc, err = mendel.NewTCPClusterResilient(cfg, groupLists, resilience())
		if err != nil {
			log.Fatalf("mendel index: %v", err)
		}
	}

	f, err := os.Open(*fasta)
	if err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	set, err := mendel.ReadFASTA(f, cluster.Config().Kind)
	f.Close()
	if err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	start := time.Now()
	if err := cluster.Index(context.Background(), set); err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	fmt.Printf("indexed %d sequences (%d residues) in %v\n",
		set.Len(), set.TotalResidues(), time.Since(start).Round(time.Millisecond))

	out, err := os.Create(*manifest)
	if err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	defer out.Close()
	if err := mendel.SaveManifest(cluster, out); err != nil {
		log.Fatalf("mendel index: %v", err)
	}
	fmt.Printf("manifest written to %s\n", *manifest)
	if st := rpc.Stats(); st.Retries > 0 || st.Trips > 0 {
		fmt.Printf("rpc: %s\n", st)
	}
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	manifest := fs.String("manifest", "cluster.mendel", "manifest file from 'mendel index'")
	fasta := fs.String("fasta", "", "FASTA file with query sequences")
	inline := fs.String("seq", "", "inline query sequence")
	maxHits := fs.Int("max-hits", 10, "hits to print per query")
	maxE := fs.Float64("evalue", 10, "expectation value threshold E")
	step := fs.Int("step", 0, "sliding window step k (0 = block length)")
	neighbors := fs.Int("n", 12, "nearest neighbours per subquery")
	identity := fs.Float64("identity", 0.30, "identity threshold i")
	cscore := fs.Float64("cscore", 0.40, "consecutivity threshold c")
	matrixName := fs.String("matrix", "", "scoring matrix M (default by kind)")
	bothStrands := fs.Bool("strands", false, "also search the reverse complement (DNA clusters)")
	mask := fs.Bool("mask", false, "mask low-complexity query regions before searching")
	translated := fs.Bool("translated", false, "treat queries as DNA and search a protein cluster in all six reading frames (blastx-style)")
	trace := fs.Bool("trace", false, "print a per-stage execution trace for each query")
	metricsAddr := fs.String("metrics-addr", "", "host:port for the coordinator's HTTP observability endpoint (/metrics, /debug/spans, /debug/pprof); empty disables")
	resilience := resilienceFlags(fs)
	fs.Parse(args)

	cluster, rpc := loadManifest(*manifest, resilience())
	if *metricsAddr != "" {
		reg := mendel.NewMetricsRegistry()
		tracer := mendel.NewQueryTracer(0)
		cluster.SetObservability(reg, tracer)
		rpc.Register(reg)
		_, bound, err := mendel.ServeMetrics(*metricsAddr, reg, tracer)
		if err != nil {
			log.Fatalf("mendel query: metrics endpoint: %v", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}
	params := mendel.DefaultParams()
	params.MaxE = *maxE
	params.Neighbors = *neighbors
	params.Identity = *identity
	params.CScore = *cscore
	if *step > 0 {
		params.Step = *step
	} else {
		params.Step = cluster.Config().BlockLen
	}
	if *matrixName != "" {
		params.Matrix = *matrixName
	} else if cluster.Config().Kind == mendel.DNA {
		params.Matrix = "DNA"
	}
	params.BothStrands = *bothStrands
	params.Mask = *mask

	queryKind := cluster.Config().Kind
	if *translated {
		queryKind = mendel.DNA
	}
	queries := mendel.NewSet(queryKind)
	switch {
	case *inline != "":
		if _, err := queries.Add("query", []byte(*inline)); err != nil {
			log.Fatalf("mendel query: %v", err)
		}
	case *fasta != "":
		f, err := os.Open(*fasta)
		if err != nil {
			log.Fatalf("mendel query: %v", err)
		}
		queries, err = mendel.ReadFASTA(f, queryKind)
		f.Close()
		if err != nil {
			log.Fatalf("mendel query: %v", err)
		}
	default:
		log.Fatal("mendel query: provide -seq or -fasta")
	}

	ctx := context.Background()
	for _, q := range queries.Seqs {
		start := time.Now()
		var hits []mendel.Hit
		var frames []int
		if *translated {
			thits, err := cluster.SearchTranslated(ctx, q.Data, params)
			if err != nil {
				log.Fatalf("mendel query: %s: %v", q.Name, err)
			}
			for _, th := range thits {
				hits = append(hits, th.Hit)
				frames = append(frames, th.Frame)
			}
			fmt.Printf("query %s (%d nt, six frames): %d hits in %v\n",
				q.Name, q.Len(), len(hits), time.Since(start).Round(time.Microsecond))
		} else if *trace {
			var tr *mendel.SearchStats
			var err error
			hits, tr, err = cluster.SearchTrace(ctx, q.Data, params)
			if err != nil {
				log.Fatalf("mendel query: %s: %v", q.Name, err)
			}
			fmt.Printf("query %s: %s\n", q.Name, tr)
		} else {
			var err error
			hits, err = cluster.Search(ctx, q.Data, params)
			if err != nil {
				log.Fatalf("mendel query: %s: %v", q.Name, err)
			}
			fmt.Printf("query %s (%d residues): %d hits in %v\n",
				q.Name, q.Len(), len(hits), time.Since(start).Round(time.Microsecond))
		}
		for i, h := range hits {
			if i >= *maxHits {
				fmt.Printf("  ... %d more\n", len(hits)-*maxHits)
				break
			}
			extra := ""
			if len(frames) == len(hits) {
				extra = fmt.Sprintf(" frame=%d", frames[i])
			} else if h.Strand == '-' {
				extra = " strand=-"
			}
			fmt.Printf("  %-20s bits=%6.1f E=%8.2g  q[%d:%d] s[%d:%d] %s%s\n",
				h.Name, h.Bits, h.E,
				h.Alignment.QStart, h.Alignment.QEnd,
				h.Alignment.SStart, h.Alignment.SEnd,
				h.Alignment.CIGAR(), extra)
		}
	}
	if *trace {
		fmt.Printf("rpc: %s\n", rpc.Stats())
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	manifest := fs.String("manifest", "cluster.mendel", "manifest file from 'mendel index'")
	showMetrics := fs.Bool("metrics", false, "also aggregate observability metrics cluster-wide")
	resilience := resilienceFlags(fs)
	fs.Parse(args)
	cluster, _ := loadManifest(*manifest, resilience())
	stats, down, err := cluster.StatsDetailed(context.Background())
	if err != nil {
		log.Fatalf("mendel stats: %v", err)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Node < stats[j].Node })
	total := 0
	for _, s := range stats {
		total += s.Blocks
	}
	fmt.Printf("%d nodes, %d blocks, %d sequences, %d residues indexed\n",
		len(stats), total, cluster.NumSequences(), cluster.TotalResidues())
	for _, s := range stats {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.Blocks) / float64(total)
		}
		fmt.Printf("  %-22s blocks=%-8d (%5.2f%%) repo-seqs=%d\n", s.Node, s.Blocks, pct, s.Sequences)
	}
	sort.Strings(down)
	for _, addr := range down {
		fmt.Printf("  %-22s UNREACHABLE\n", addr)
	}
	if *showMetrics {
		printClusterMetrics(cluster)
	}
}

// printClusterMetrics collects every node's registry snapshot and prints
// the cluster-wide aggregate: counters summed, histograms merged bucket-wise
// so the quantiles reflect the whole deployment.
func printClusterMetrics(cluster *mendel.Cluster) {
	metrics, down, err := cluster.MetricsDetailed(context.Background())
	if err != nil {
		log.Fatalf("mendel stats: %v", err)
	}
	reporting := 0
	groups := make([][]mendel.MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		if len(m.Metrics) > 0 {
			reporting++
		}
		groups = append(groups, m.Metrics)
	}
	merged := mendel.MergeMetricSnapshots(groups...)
	fmt.Printf("\ncluster metrics (%d/%d nodes reporting; start nodes with -metrics-addr to enable):\n",
		reporting, len(metrics))
	if len(down) > 0 {
		fmt.Printf("  %d nodes unreachable\n", len(down))
	}
	for _, s := range merged {
		if s.Kind == "histogram" {
			if strings.HasSuffix(s.Name, "_ns") {
				// Nanosecond histograms read better as durations.
				fmt.Printf("  %-28s count=%-8d p50=%-10v p95=%-10v p99=%-10v max=%v\n",
					s.Name, s.Count,
					time.Duration(s.Quantile(0.50)),
					time.Duration(s.Quantile(0.95)),
					time.Duration(s.Quantile(0.99)),
					time.Duration(s.Max))
			} else {
				fmt.Printf("  %-28s count=%-8d p50=%-10d p95=%-10d p99=%-10d max=%d\n",
					s.Name, s.Count,
					s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Max)
			}
			continue
		}
		fmt.Printf("  %-28s %d\n", s.Name, s.Value)
	}
}

func loadManifest(path string, rc mendel.ResilienceConfig) (*mendel.Cluster, *mendel.ResilientCaller) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("mendel: opening manifest: %v", err)
	}
	defer f.Close()
	cluster, rpc, err := mendel.LoadManifestTCPResilient(f, rc)
	if err != nil {
		log.Fatalf("mendel: loading manifest: %v", err)
	}
	return cluster, rpc
}

func parseKind(name string) mendel.Kind {
	switch name {
	case "protein":
		return mendel.Protein
	case "dna":
		return mendel.DNA
	default:
		log.Fatalf("mendel: unknown kind %q", name)
		return seq.Protein
	}
}

func splitGroups(nodes []string, groups int) ([][]string, error) {
	if groups <= 0 || len(nodes) < groups {
		return nil, fmt.Errorf("%d nodes cannot fill %d groups", len(nodes), groups)
	}
	out := make([][]string, groups)
	for i, n := range nodes {
		out[i%groups] = append(out[i%groups], strings.TrimSpace(n))
	}
	return out, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
