// Command mendel-bench regenerates the tables and figures of the paper's
// evaluation section (§VI) plus the ablations in DESIGN.md, printing each
// as a text table. See EXPERIMENTS.md for the expected shapes.
//
// Usage:
//
//	mendel-bench [flags] <experiment>
//
// where experiment is one of: table1, fig5, fig6a, fig6b, fig6c, fig6d,
// ablate-depth, ablate-tier2, ablate-insert, ablate-bucket, perf, prefilter,
// codec, all.
//
// The perf experiment measures the ingest and query hot paths (ns/op,
// allocs/op, blocks/sec, p50/p95 latency); -json writes its machine-readable
// form — the BENCH_*.json artifact the CI benchmark gate archives — to the
// given path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mendel/internal/bench"
	"mendel/internal/loadgen"
	"mendel/internal/seq"
	"mendel/internal/transport"
)

func main() {
	// The load harness drives a live gateway over HTTP and takes its own
	// flags, so it dispatches before the experiment flag set.
	if len(os.Args) > 1 && os.Args[1] == "load" {
		runLoad(os.Args[2:])
		return
	}
	nodes := flag.Int("nodes", 20, "storage nodes in the simulated cluster")
	groups := flag.Int("groups", 4, "storage node groups")
	dbSeqs := flag.Int("db", 400, "database sequences")
	seqLen := flag.Int("seqlen", 500, "mean database sequence length")
	queries := flag.Int("queries", 5, "queries per measurement point")
	seed := flag.Int64("seed", 1, "workload seed")
	latency := flag.Duration("latency", 0, "simulated per-message LAN latency (e.g. 1ms)")
	jsonPath := flag.String("json", "", "write the perf experiment's JSON result to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mendel-bench [flags] <table1|fig5|fig6a|fig6b|fig6c|fig6d|ablate-depth|ablate-tier2|ablate-insert|ablate-bucket|perf|prefilter|codec|all>")
		os.Exit(2)
	}
	scale := bench.Scale{
		Nodes:           *nodes,
		Groups:          *groups,
		DBSequences:     *dbSeqs,
		SeqLen:          *seqLen,
		QueriesPerPoint: *queries,
		Seed:            *seed,
	}
	if *latency > 0 {
		scale.Latency = transport.LatencyModel{Base: *latency, Jitter: *latency / 2}
	}

	run(flag.Arg(0), scale, *jsonPath)
}

func run(name string, scale bench.Scale, jsonPath string) {
	experiments := map[string]func(bench.Scale) (fmt.Stringer, error){
		"fig5": func(s bench.Scale) (fmt.Stringer, error) { return wrap(bench.RunFig5(s)) },
		"fig6a": func(s bench.Scale) (fmt.Stringer, error) {
			return wrap(bench.RunFig6a(s, nil))
		},
		"fig6b": func(s bench.Scale) (fmt.Stringer, error) {
			return wrap(bench.RunFig6b(s, nil, 1000))
		},
		"fig6c": func(s bench.Scale) (fmt.Stringer, error) {
			return wrap(bench.RunFig6c(s, nil, 400))
		},
		"fig6d": func(s bench.Scale) (fmt.Stringer, error) {
			return wrap(bench.RunFig6d(s, nil, 10, 1000))
		},
		"ablate-depth": func(s bench.Scale) (fmt.Stringer, error) {
			return wrap(bench.RunAblateDepth(s, nil))
		},
		"ablate-tier2": func(s bench.Scale) (fmt.Stringer, error) {
			return wrap(bench.RunAblateTier2(s))
		},
		"ablate-insert": func(s bench.Scale) (fmt.Stringer, error) {
			return wrap(bench.RunAblateInsert(s))
		},
		"ablate-bucket": func(s bench.Scale) (fmt.Stringer, error) {
			return wrap(bench.RunAblateBucket(s, nil))
		},
		"perf": func(s bench.Scale) (fmt.Stringer, error) {
			r, err := bench.RunPerf(s)
			if err != nil {
				return nil, err
			}
			if jsonPath != "" {
				data, err := r.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
			}
			return wrap(r, nil)
		},
		"prefilter": func(s bench.Scale) (fmt.Stringer, error) {
			r, err := bench.RunPrefilter(s)
			if err != nil {
				return nil, err
			}
			if jsonPath != "" {
				data, err := r.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
			}
			return wrap(r, nil)
		},
		"codec": func(bench.Scale) (fmt.Stringer, error) {
			r, err := bench.RunCodecAB()
			if err != nil {
				return nil, err
			}
			if jsonPath != "" {
				data, err := r.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
			}
			return wrap(r, nil)
		},
	}
	order := []string{"table1", "fig5", "fig6a", "fig6b", "fig6c", "fig6d",
		"ablate-depth", "ablate-tier2", "ablate-insert", "ablate-bucket", "perf", "prefilter", "codec"}

	runOne := func(id string) {
		if id == "table1" {
			fmt.Println(bench.TableI())
			return
		}
		exp, ok := experiments[id]
		if !ok {
			log.Fatalf("mendel-bench: unknown experiment %q", id)
		}
		start := time.Now()
		result, err := exp(scale)
		if err != nil {
			log.Fatalf("mendel-bench: %s: %v", id, err)
		}
		fmt.Println(result.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if name == "all" {
		for _, id := range order {
			runOne(id)
		}
		return
	}
	runOne(name)
}

// runLoad is the `mendel-bench load` subcommand: an open-loop load run
// against a live `mendel serve` gateway, emitting the BENCH_5.json artifact
// with -json. Unlike the closed-loop experiments above (which own their
// simulated cluster), load offers requests on a fixed arrival schedule to a
// real HTTP endpoint, so it measures shed behaviour and goodput under
// overload rather than best-case latency.
func runLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:9090", "gateway base URL")
	rate := fs.Float64("rate", 50, "target arrival rate, requests/sec")
	duration := fs.Duration("duration", 10*time.Second, "load duration")
	mix := fs.String("mix", "read", "workload mix: read, write, or burst")
	tenants := fs.Int("tenants", 1, "spread requests over N tenants")
	qlen := fs.Int("qlen", 64, "synthesized query length, residues")
	kind := fs.String("kind", "protein", "molecule kind: protein or dna")
	seed := fs.Int64("seed", 1, "workload seed")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	jsonPath := fs.String("json", "", "write the JSON result to this file")
	failOnErr := fs.Bool("fail-on-errors", false, "exit non-zero on non-shed errors or zero successes (CI gate)")
	fs.Parse(args)

	k := seq.Protein
	if *kind == "dna" {
		k = seq.DNA
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:      *url,
		Rate:     *rate,
		Duration: *duration,
		Mix:      loadgen.Mix(*mix),
		Kind:     k,
		QueryLen: *qlen,
		Tenants:  *tenants,
		Timeout:  *timeout,
		Seed:     *seed,
	})
	if err != nil {
		log.Fatalf("mendel-bench load: %v", err)
	}
	fmt.Println(res.String())
	if *jsonPath != "" {
		data, err := res.JSON()
		if err != nil {
			log.Fatalf("mendel-bench load: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("mendel-bench load: %v", err)
		}
	}
	// Gate after the artifact is written, so a failing run still uploads.
	if *failOnErr && (res.Errors > 0 || res.OK == 0) {
		log.Fatalf("mendel-bench load: gate failed: %d non-shed errors, %d ok responses", res.Errors, res.OK)
	}
}

// renderer adapts the bench Render methods to fmt.Stringer.
type renderer struct{ render func() string }

func (r renderer) String() string { return r.render() }

func wrap[T interface{ Render() string }](v T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return renderer{render: v.Render}, nil
}
