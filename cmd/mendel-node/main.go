// Command mendel-node runs one Mendel storage node, serving the cluster
// protocol over TCP until interrupted. Nodes start empty and inert; a
// coordinator (cmd/mendel or library code using mendel.NewTCPCluster)
// bootstraps them with the shared hash tree and topology when it indexes
// data.
//
// Usage:
//
//	mendel-node -addr 0.0.0.0:7946
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mendel"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "host:port to listen on (port 0 picks a free port)")
	dataFile := flag.String("data", "", "snapshot file: loaded at startup if present, written on shutdown")
	metricsAddr := flag.String("metrics-addr", "", "host:port for the HTTP observability endpoint (/metrics, /metrics/history, /debug/spans, /debug/trace/{id}, /debug/pprof); empty disables")
	sampleEvery := flag.Duration("sample-interval", time.Second, "windowed telemetry sampling interval")
	historySamples := flag.Int("history-samples", 300, "telemetry ring capacity (samples retained)")
	slowQuery := flag.Duration("slow-query", 0, "log group searches slower than this to stderr (0 disables)")
	logJSON := flag.Bool("log-json", false, "emit structured JSON logs on stderr (one object per line, trace-correlated)")
	rc := mendel.DefaultResilienceConfig()
	flag.DurationVar(&rc.CallTimeout, "rpc-timeout", rc.CallTimeout, "per-RPC timeout for peer calls (0 disables)")
	flag.IntVar(&rc.MaxRetries, "rpc-retries", rc.MaxRetries, "retries per RPC on unreachable peers")
	flag.IntVar(&rc.TripAfter, "breaker-trip", rc.TripAfter, "consecutive failures that trip a peer's circuit breaker (0 disables)")
	flag.DurationVar(&rc.Cooldown, "breaker-cooldown", rc.Cooldown, "circuit breaker cooldown before a half-open probe")
	var wc mendel.WireConfig
	flag.StringVar(&wc.Codec, "rpc-codec", mendel.CodecBinary, "RPC wire codec: binary (negotiated, with transparent gob fallback against old peers) or gob (legacy framing)")
	flag.BoolVar(&wc.Compress, "rpc-compress", false, "flate-compress block-transfer RPC frames sent to peers (binary codec only)")
	flag.Parse()

	srv, err := mendel.ServeNodeWire(*addr, rc, wc)
	if err != nil {
		log.Fatalf("mendel-node: %v", err)
	}
	// Observability sinks are always attached: the tracer must exist even
	// without -metrics-addr, so that sampled distributed traces arriving
	// over TCP record this node's spans and ship them back to the
	// coordinator. -metrics-addr only controls the HTTP surface.
	reg := mendel.NewMetricsRegistry()
	tracer := mendel.NewQueryTracer(0)
	var logger *slog.Logger
	if *logJSON {
		logger = mendel.NewLogger(os.Stderr, slog.LevelInfo, slog.String("node", srv.Addr()))
	}
	if *slowQuery > 0 {
		tracer.SetSlowThreshold(*slowQuery)
		tracer.OnSlow(func(sp mendel.SpanSnapshot) {
			if logger != nil {
				logger.Warn("slow query",
					slog.String("span", sp.Name),
					slog.Duration("duration", time.Duration(sp.NS)),
					slog.String("trace_id", sp.TraceID))
				return
			}
			log.Printf("mendel-node: slow query: %s took %v", sp.Name, time.Duration(sp.NS))
		})
	}
	srv.Observe(reg, tracer)
	// Replace Observe's default sampler with one on the configured cadence;
	// the same series answers wire.MetricsHistory pulls from coordinators
	// and backs the local /metrics/history endpoint.
	series := srv.StartHistory(reg, mendel.TimeSeriesConfig{
		Interval: *sampleEvery,
		Capacity: *historySamples,
	})
	if *metricsAddr != "" {
		surface := mendel.MetricsSurface{
			Registry: reg,
			Tracer:   tracer,
			Health:   srv.HealthSource(),
			History:  series,
		}
		_, bound, err := surface.Serve(*metricsAddr)
		if err != nil {
			log.Fatalf("mendel-node: metrics endpoint: %v", err)
		}
		fmt.Printf("mendel-node health on http://%s/debug/health\n", bound)
		fmt.Printf("mendel-node metrics on http://%s/metrics\n", bound)
	}
	if *dataFile != "" {
		if f, err := os.Open(*dataFile); err == nil {
			if err := srv.Load(f); err != nil {
				log.Fatalf("mendel-node: loading %s: %v", *dataFile, err)
			}
			f.Close()
			fmt.Printf("mendel-node restored state from %s\n", *dataFile)
		}
	}
	fmt.Printf("mendel-node listening on %s\n", srv.Addr())
	if logger != nil {
		logger.Info("listening", slog.String("addr", srv.Addr()))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if *dataFile != "" {
		f, err := os.Create(*dataFile)
		if err != nil {
			log.Fatalf("mendel-node: %v", err)
		}
		if err := srv.Save(f); err != nil {
			log.Fatalf("mendel-node: saving %s: %v", *dataFile, err)
		}
		f.Close()
		fmt.Printf("mendel-node saved state to %s\n", *dataFile)
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("mendel-node: shutdown: %v", err)
	}
}
