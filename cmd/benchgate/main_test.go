package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseStripsProcSuffixAndCollectsRuns(t *testing.T) {
	path := writeBench(t, `goos: linux
BenchmarkFoo-8    1    100 ns/op    5 B/op
BenchmarkFoo-8    1    300 ns/op
BenchmarkFoo-8    1    200 ns/op
BenchmarkBar      2    50 ns/op
not a benchmark line
BenchmarkBad      1    xx ns/op
`)
	runs, err := parse(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(runs["BenchmarkFoo"]); got != 3 {
		t.Fatalf("BenchmarkFoo runs = %d, want 3", got)
	}
	if got := median(runs["BenchmarkFoo"]); got != 200 {
		t.Fatalf("median = %f, want 200", got)
	}
	if got := len(runs["BenchmarkBar"]); got != 1 {
		t.Fatalf("BenchmarkBar runs = %d, want 1", got)
	}
	if _, ok := runs["BenchmarkBad"]; ok {
		t.Fatal("unparseable value should be skipped")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(writeBench(t, "no benchmarks here\n")); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestMedianEven(t *testing.T) {
	if got := median([]float64{100, 200, 400, 300}); got != 250 {
		t.Fatalf("even median = %f, want 250", got)
	}
}
