// Command benchgate is the CI benchmark-regression gate: it compares two
// `go test -bench` output files (a checked-in baseline and a fresh run) and
// exits nonzero when the geometric-mean ns/op ratio across the common
// benchmarks regresses beyond a threshold.
//
// Usage:
//
//	benchgate -old .github/bench_baseline.txt -new bench_new.txt [-threshold 0.15]
//
// Each benchmark's ns/op is summarized by the median across its -count
// repetitions, which shrugs off the odd noisy iteration; benchstat remains
// the human-readable report, benchgate is the hard pass/fail. Benchmarks
// present in only one file are reported but do not gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output")
	newPath := flag.String("new", "", "candidate benchmark output")
	threshold := flag.Float64("threshold", 0.15, "maximum allowed geomean slowdown (0.15 = +15%)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -old baseline.txt -new candidate.txt [-threshold 0.15]")
		os.Exit(2)
	}
	oldRuns, err := parse(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRuns, err := parse(*newPath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(oldRuns))
	for name := range oldRuns {
		if _, ok := newRuns[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("benchgate: no common benchmarks between %s and %s", *oldPath, *newPath))
	}
	for name := range oldRuns {
		if _, ok := newRuns[name]; !ok {
			fmt.Printf("note: %s only in baseline\n", name)
		}
	}
	for name := range newRuns {
		if _, ok := oldRuns[name]; !ok {
			fmt.Printf("note: %s only in candidate (no baseline yet)\n", name)
		}
	}

	logSum := 0.0
	fmt.Printf("%-50s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range names {
		o, n := median(oldRuns[name]), median(newRuns[name])
		ratio := n / o
		logSum += math.Log(ratio)
		fmt.Printf("%-50s %14.0f %14.0f %7.3fx\n", name, o, n, ratio)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	limit := 1 + *threshold
	fmt.Printf("geomean ratio: %.3fx (limit %.3fx over %d benchmarks)\n", geomean, limit, len(names))
	if geomean > limit {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: geomean slowdown %.1f%% exceeds %.1f%%\n",
			(geomean-1)*100, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

// parse extracts ns/op samples per benchmark name (CPU-count suffix
// stripped, so baselines survive runner core-count changes).
func parse(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		runs[name] = append(runs[name], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines in %s", path)
	}
	return runs, nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
