// Command mendel-datagen generates the synthetic datasets the experiments
// run on: nr-like protein (or DNA) reference databases and mutated query
// sets, written as FASTA.
//
// Examples:
//
//	mendel-datagen -kind protein -n 1000 -len 500 -out nr.fasta
//	mendel-datagen -kind protein -queries-from nr.fasta -n 50 -len 1000 \
//	    -sub 0.05 -indel 0.01 -out queries.fasta
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mendel"
	"mendel/internal/datagen"
	"mendel/internal/seq"
)

func main() {
	kindName := flag.String("kind", "protein", "molecule kind: protein or dna")
	n := flag.Int("n", 100, "number of sequences to generate")
	length := flag.Int("len", 500, "sequence (or query) length")
	jitter := flag.Int("jitter", 0, "uniform length jitter (+/- residues)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	queriesFrom := flag.String("queries-from", "", "sample mutated queries from this FASTA database instead of generating fresh sequences")
	sub := flag.Float64("sub", 0.05, "substitution rate for query sampling")
	indel := flag.Float64("indel", 0.01, "indel rate for query sampling")
	prefix := flag.String("prefix", "seq", "sequence name prefix")
	flag.Parse()

	var kind seq.Kind
	switch *kindName {
	case "protein":
		kind = mendel.Protein
	case "dna":
		kind = mendel.DNA
	default:
		log.Fatalf("mendel-datagen: unknown kind %q", *kindName)
	}

	gen := datagen.New(kind, *seed)
	var set *mendel.Set
	if *queriesFrom != "" {
		f, err := os.Open(*queriesFrom)
		if err != nil {
			log.Fatalf("mendel-datagen: %v", err)
		}
		db, err := mendel.ReadFASTA(f, kind)
		f.Close()
		if err != nil {
			log.Fatalf("mendel-datagen: %v", err)
		}
		queries, err := gen.QuerySet(db, *n, *length, *sub, *indel)
		if err != nil {
			log.Fatalf("mendel-datagen: %v", err)
		}
		set = mendel.NewSet(kind)
		for i, q := range queries {
			if _, err := set.Add(fmt.Sprintf("%s%06d", *prefix, i), q); err != nil {
				log.Fatalf("mendel-datagen: %v", err)
			}
		}
	} else {
		var err error
		set, err = gen.Database(*n, *length, *jitter, *prefix)
		if err != nil {
			log.Fatalf("mendel-datagen: %v", err)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("mendel-datagen: %v", err)
		}
		defer f.Close()
		w = f
	}
	if err := mendel.WriteFASTA(w, set, 70); err != nil {
		log.Fatalf("mendel-datagen: %v", err)
	}
}
