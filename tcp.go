package mendel

import (
	"context"
	"io"

	"mendel/internal/core"
	"mendel/internal/node"
	"mendel/internal/obs"
	"mendel/internal/transport"
)

// Resilient RPC layer re-exports. A ResilienceConfig turns any TCP caller
// into one with per-call timeouts, bounded retries with exponential backoff
// on unreachable peers, and a per-address circuit breaker.
type (
	// ResilienceConfig tunes timeouts, retries and the circuit breaker.
	ResilienceConfig = transport.ResilientConfig
	// ResilienceStats is a snapshot of retry/trip/rejection counters.
	ResilienceStats = transport.ResilientStats
	// ResilientCaller decorates a transport with the resilience policy.
	ResilientCaller = transport.ResilientCaller
)

// DefaultResilienceConfig returns the production defaults (10s call
// timeout, 2 retries, breaker tripping after 5 consecutive failures).
func DefaultResilienceConfig() ResilienceConfig { return transport.DefaultResilientConfig() }

// WireConfig selects the TCP wire codec ("binary", the default, or "gob"
// for the legacy framing) and whether block-transfer frames are
// flate-compressed. The zero value — negotiated binary codec, no
// compression — is what ServeNode, NewTCPCluster and LoadManifestTCP use.
type WireConfig = transport.WireConfig

// Codec names for WireConfig.Codec.
const (
	CodecBinary = transport.CodecBinary
	CodecGob    = transport.CodecGob
)

// NodeServer is a storage node serving the Mendel protocol over TCP.
type NodeServer struct {
	srv    *transport.TCPServer
	node   *node.Node
	client *transport.TCPClient
	rcall  *transport.ResilientCaller

	series     *obs.TimeSeries
	stopSeries context.CancelFunc
}

// ServeNode starts a storage node listening on addr ("host:port"; port 0
// picks a free port). The node is inert until a coordinator bootstraps it
// via Index or LoadManifest+Index.
func ServeNode(addr string) (*NodeServer, error) {
	return ServeNodeResilient(addr, DefaultResilienceConfig())
}

// ServeNodeResilient is ServeNode with an explicit resilience policy for
// the node's own outbound client (used for group fan-out and aggregation
// when the node acts as a group entry point).
func ServeNodeResilient(addr string, rc ResilienceConfig) (*NodeServer, error) {
	return ServeNodeWire(addr, rc, WireConfig{})
}

// ServeNodeWire is ServeNodeResilient with an explicit wire codec policy,
// applied to both the node's server side and its own outbound client.
func ServeNodeWire(addr string, rc ResilienceConfig, wc WireConfig) (*NodeServer, error) {
	srv, err := transport.ListenTCP(addr, nil)
	if err != nil {
		return nil, err
	}
	if err := srv.SetWire(wc); err != nil {
		srv.Close()
		return nil, err
	}
	// The node's advertised identity is the bound listener address (known
	// only after listening); it uses a TCP client of its own to reach its
	// group peers when acting as a group entry point.
	client := transport.NewTCPClient(0)
	if err := client.SetWire(wc); err != nil {
		srv.Close()
		return nil, err
	}
	rcall := transport.NewResilientCaller(client, rc)
	n := node.New(srv.Addr(), rcall)
	srv.SetHandler(n)
	return &NodeServer{srv: srv, node: n, client: client, rcall: rcall}, nil
}

// Observe attaches observability sinks to every layer of the node: the node
// itself (vp-tree and extension metrics, group_search span trees), the TCP
// server (request counters, handle latencies, bytes on the wire), the
// node's outbound TCP client, and its circuit breaker. Either argument may
// be nil. Call before the node serves traffic.
func (s *NodeServer) Observe(reg *MetricsRegistry, tracer *QueryTracer) {
	s.node.Observe(reg, tracer)
	s.srv.Observe(reg)
	s.client.Observe(reg)
	s.rcall.Register(reg)
	if reg != nil && s.series == nil {
		// Default windowed telemetry (1s × 300 samples + runtime collector)
		// so every observed node answers wire.MetricsHistory pulls; Close
		// stops the sampling goroutine. StartHistory first for custom
		// intervals.
		s.StartHistory(reg, TimeSeriesConfig{})
	}
}

// StartHistory starts (or replaces) the node's windowed time-series
// sampler over reg with the given config (zero value = 1s × 300 samples),
// wiring in a runtime collector and registering the series as the backend
// for wire.MetricsHistory pulls. The sampling goroutine stops on Close.
func (s *NodeServer) StartHistory(reg *MetricsRegistry, cfg TimeSeriesConfig) *TimeSeries {
	if s.stopSeries != nil {
		s.stopSeries()
	}
	ts := obs.NewTimeSeries(reg, cfg)
	ts.SetNode(s.srv.Addr())
	ts.AddCollector(obs.NewRuntimeCollector(reg).Collect)
	ctx, cancel := context.WithCancel(context.Background())
	s.series = ts
	s.stopSeries = cancel
	s.node.ObserveHistory(ts)
	go ts.Run(ctx)
	return ts
}

// History returns the node's windowed sampler (nil until Observe or
// StartHistory).
func (s *NodeServer) History() *TimeSeries { return s.series }

// Addr returns the bound address to hand to NewTCPCluster.
func (s *NodeServer) Addr() string { return s.srv.Addr() }

// HealthSource returns a /debug/health backend serving this node's local
// inventory summary (booted flag, block/sequence/tree counts). Pass it to
// ServeMetricsWithHealth; cluster-wide health lives on the coordinator's
// HealthMonitor instead.
func (s *NodeServer) HealthSource() HealthSource {
	return func() any { return s.node.Health() }
}

// Close shuts the node down, stopping the history sampler if one runs.
func (s *NodeServer) Close() error {
	if s.stopSeries != nil {
		s.stopSeries()
		s.stopSeries = nil
	}
	return s.srv.Close()
}

// Save writes the node's durable state (bootstrap parameters, stored blocks,
// repository sequences) so a restarted node resumes serving without
// re-ingestion. Pair with the coordinator-side SaveManifest.
func (s *NodeServer) Save(w io.Writer) error { return s.node.SaveTo(w) }

// Load restores a node's state from a Save snapshot. The node must have
// been started on the same advertised address recorded in the snapshot's
// topology.
func (s *NodeServer) Load(r io.Reader) error { return s.node.LoadFrom(r) }

// NewTCPCluster creates a coordinator over TCP storage nodes arranged into
// the given groups of addresses, with the default resilience policy.
func NewTCPCluster(cfg Config, groups [][]string) (*Cluster, error) {
	c, _, err := NewTCPClusterResilient(cfg, groups, DefaultResilienceConfig())
	return c, err
}

// NewTCPClusterResilient is NewTCPCluster with an explicit resilience
// policy; the returned ResilientCaller exposes Stats() for observability.
func NewTCPClusterResilient(cfg Config, groups [][]string, rc ResilienceConfig) (*Cluster, *ResilientCaller, error) {
	return NewTCPClusterWire(cfg, groups, rc, WireConfig{})
}

// NewTCPClusterWire is NewTCPClusterResilient with an explicit wire codec
// policy for the coordinator's outbound client.
func NewTCPClusterWire(cfg Config, groups [][]string, rc ResilienceConfig, wc WireConfig) (*Cluster, *ResilientCaller, error) {
	client := transport.NewTCPClient(0)
	if err := client.SetWire(wc); err != nil {
		return nil, nil, err
	}
	caller := transport.NewResilientCaller(client, rc)
	c, err := core.NewCluster(cfg, caller, groups)
	if err != nil {
		return nil, nil, err
	}
	return c, caller, nil
}

// SaveManifest persists coordinator state (config, topology, hash tree,
// sequence catalog) so a later process can resume querying nodes that still
// hold their data — the paper's "save pre-indexed data" extension.
func SaveManifest(c *Cluster, w io.Writer) error { return c.SaveManifest(w) }

// LoadManifestTCP restores a coordinator from a manifest, talking to its
// nodes over TCP with the default resilience policy.
func LoadManifestTCP(r io.Reader) (*Cluster, error) {
	c, _, err := LoadManifestTCPResilient(r, DefaultResilienceConfig())
	return c, err
}

// LoadManifestTCPResilient is LoadManifestTCP with an explicit resilience
// policy; the returned ResilientCaller exposes Stats() for observability.
func LoadManifestTCPResilient(r io.Reader, rc ResilienceConfig) (*Cluster, *ResilientCaller, error) {
	return LoadManifestTCPWire(r, rc, WireConfig{})
}

// LoadManifestTCPWire is LoadManifestTCPResilient with an explicit wire
// codec policy for the coordinator's outbound client.
func LoadManifestTCPWire(r io.Reader, rc ResilienceConfig, wc WireConfig) (*Cluster, *ResilientCaller, error) {
	client := transport.NewTCPClient(0)
	if err := client.SetWire(wc); err != nil {
		return nil, nil, err
	}
	caller := transport.NewResilientCaller(client, rc)
	c, err := core.LoadManifest(r, caller)
	if err != nil {
		return nil, nil, err
	}
	return c, caller, nil
}
