#!/usr/bin/env bash
# Open-loop load smoke for CI: stand up a real TCP cluster behind
# `mendel serve`, drive it with `mendel-bench load`, and fail on any
# non-shed error. Two phases:
#
#   1. A 10s read mix against a generously provisioned gateway must
#      sustain the offered rate with zero errors (emits BENCH_5.json).
#   2. A 5s burst mix against a deliberately tiny admission window must
#      shed (429) rather than error: overload stays bounded and correct.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/mendel" ./cmd/mendel
go build -o "$workdir/mendel-node" ./cmd/mendel-node
go build -o "$workdir/mendel-datagen" ./cmd/mendel-datagen
go build -o "$workdir/mendel-bench" ./cmd/mendel-bench

"$workdir/mendel-datagen" -kind protein -n 30 -len 400 -out "$workdir/db.fasta"

"$workdir/mendel-node" -addr 127.0.0.1:7471 &
"$workdir/mendel-node" -addr 127.0.0.1:7472 &
sleep 1

"$workdir/mendel" index -nodes 127.0.0.1:7471,127.0.0.1:7472 -groups 2 \
  -kind protein -fasta "$workdir/db.fasta" -manifest "$workdir/cluster.mendel"

# Phase 1: sustained read mix, roomy limits. Any non-shed error fails.
# The sketch prefilter is coordinator-side state: `mendel serve` takes the
# -prefilter flag, the storage nodes need none (they answer SketchFetch
# either way). Serving with it on exercises the prefiltered fan-out under
# load; bloom mode is exact-recall so the load results are unchanged.
"$workdir/mendel" serve -manifest "$workdir/cluster.mendel" -addr 127.0.0.1:7461 \
  -prefilter "${MENDEL_PREFILTER:-bloom}" &
sleep 1
"$workdir/mendel-bench" load -url http://127.0.0.1:7461 \
  -rate 60 -duration 10s -mix read -qlen 64 -seed 1 \
  -json BENCH_5.json -fail-on-errors

# The gateway forwards its registry to the TCP client, so /metrics must
# show bytes actually moving on the coordinator-to-node RPC path; zero (or
# absent) counters would mean the observability plumbing regressed.
metrics=$(curl -sf http://127.0.0.1:7461/metrics)
for counter in rpc_bytes_sent rpc_bytes_recv; do
  val=$(printf '%s\n' "$metrics" | awk -v c="$counter" '$1 == c {print $2}')
  if [ -z "${val:-}" ] || [ "$val" -eq 0 ]; then
    echo "/metrics $counter is ${val:-missing}; RPC byte accounting broken" >&2
    exit 1
  fi
done
echo "rpc byte accounting ok: sent=$(printf '%s\n' "$metrics" | awk '$1=="rpc_bytes_sent"{print $2}') recv=$(printf '%s\n' "$metrics" | awk '$1=="rpc_bytes_recv"{print $2}')"

# Phase 2: burst mix into a one-slot admission window, with the SLO
# watchdog armed on shed rate over short burn-rate windows and pprof
# capture wired to the first breach. The gateway must shed some of the
# overload as 429s and error on none of it — and the watchdog must leave
# ok while the burst is in flight, then recover once it stops (the bad
# intervals age out of the 6s slow window; silence reads as healthy).
artifacts=slo_artifacts
rm -rf "$artifacts"
mkdir -p "$artifacts"
# Prefilter OFF here on purpose: this phase probes admission control and
# the watchdog, and the sketch tier would let the gateway skip every group
# for random burst queries — the one-slot window never saturates and
# nothing sheds. Phase 1 already covers prefiltered serving under load.
"$workdir/mendel" serve -manifest "$workdir/cluster.mendel" -addr 127.0.0.1:7462 \
  -prefilter off -max-inflight 1 -max-queue 2 \
  -sample-interval 250ms -slo-shed-rate 0.05 -slo-fast 2s -slo-slow 6s \
  -profile-dir "$artifacts/profiles" &
sleep 1

slo_level() {
  curl -sf http://127.0.0.1:7462/debug/slo \
    | grep -o '"Level":"[a-z]*"' | head -1 | cut -d'"' -f4 || true
}

"$workdir/mendel-bench" load -url http://127.0.0.1:7462 \
  -rate 80 -duration 5s -mix burst -qlen 64 -seed 2 \
  -json "$workdir/overload.json" -fail-on-errors &
loadpid=$!

breached=""
for _ in $(seq 1 40); do
  level=$(slo_level)
  if [ "$level" = "warn" ] || [ "$level" = "page" ]; then
    breached=$level
    break
  fi
  sleep 0.25
done
wait "$loadpid"
if [ -z "$breached" ]; then
  echo "SLO watchdog never left ok under a shedding burst" >&2
  curl -sf http://127.0.0.1:7462/debug/slo >&2 || true
  exit 1
fi
echo "slo breach observed: level=$breached"

recovered=""
for _ in $(seq 1 60); do
  level=$(slo_level)
  if [ "$level" = "ok" ]; then
    recovered=yes
    break
  fi
  sleep 0.5
done
if [ -z "$recovered" ]; then
  echo "SLO watchdog stuck breached after the overload stopped" >&2
  curl -sf http://127.0.0.1:7462/debug/slo >&2 || true
  exit 1
fi

# CI artifacts: the final SLO state, one dashboard frame, and whatever
# profiles the breach captured.
curl -sf http://127.0.0.1:7462/debug/slo -o "$artifacts/slo.json"
"$workdir/mendel" top -once -url http://127.0.0.1:7462 -window 30s \
  | tee "$artifacts/top.txt"
if ! grep -q "slo:" "$artifacts/top.txt"; then
  echo "mendel top -once rendered no SLO section" >&2
  exit 1
fi
if [ -z "$(ls -A "$artifacts/profiles" 2>/dev/null)" ]; then
  echo "breach captured no pprof profiles in $artifacts/profiles" >&2
  exit 1
fi
echo "profiles captured: $(ls "$artifacts/profiles" | tr '\n' ' ')"

shed=$(grep -o '"shed": *[0-9]*' "$workdir/overload.json" | grep -o '[0-9]*$')
if [ "${shed:-0}" -eq 0 ]; then
  echo "overload phase shed nothing; admission control not engaging" >&2
  exit 1
fi
echo "load smoke ok: overload shed $shed requests with zero errors," \
  "slo ${breached}->ok with profiles captured"
