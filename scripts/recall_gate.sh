#!/usr/bin/env bash
# Recall-regression gate for CI: prove on a live TCP cluster that the sketch
# prefilter never costs a hit.
#
#   1. Bloom leg (exact recall): every query runs with -prefilter off and
#      -prefilter bloom; the hit lists must be bit-identical, AND the bloom
#      run must actually skip groups (a prefilter that never skips is not
#      being tested).
#   2. MinHash leg (bounded estimates): `mendel similarity -verify` checks
#      the manifest's per-sequence signatures bit-for-bit against the corpus
#      and bounds every Jaccard estimate within 0.05 of the exact value,
#      then -prefilter minhash must also reproduce the unfiltered hits
#      (its zero-containment drops are conservative by construction).
#
# The query mix matters: indexed excerpts and mutated homologs exercise the
# never-skip contract, while short foreign sequences (k-mer-disjoint from
# the corpus) are the skip source. recall_diff.txt is written at the repo
# root for CI to archive on failure.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/mendel" ./cmd/mendel
go build -o "$workdir/mendel-node" ./cmd/mendel-node
go build -o "$workdir/mendel-datagen" ./cmd/mendel-datagen

# Corpus and query mix. Foreign queries come from an independent seed, so
# they share (almost) no 5-mer with the 12k-residue corpus.
"$workdir/mendel-datagen" -kind protein -n 40 -len 300 -seed 7 -prefix ref \
  -out "$workdir/db.fasta"
"$workdir/mendel-datagen" -kind protein -queries-from "$workdir/db.fasta" \
  -n 8 -len 120 -sub 0.1 -indel 0.01 -seed 11 -prefix hom -out "$workdir/hom.fasta"
"$workdir/mendel-datagen" -kind protein -queries-from "$workdir/db.fasta" \
  -n 4 -len 16 -sub 0.05 -indel 0 -seed 13 -prefix short -out "$workdir/short.fasta"
"$workdir/mendel-datagen" -kind protein -n 6 -len 24 -jitter 8 -seed 99 \
  -prefix fgn -out "$workdir/foreign.fasta"
cat "$workdir/hom.fasta" "$workdir/short.fasta" "$workdir/foreign.fasta" \
  > "$workdir/queries.fasta"

"$workdir/mendel-node" -addr 127.0.0.1:7481 &
"$workdir/mendel-node" -addr 127.0.0.1:7482 &
"$workdir/mendel-node" -addr 127.0.0.1:7483 &
"$workdir/mendel-node" -addr 127.0.0.1:7484 &
sleep 1

"$workdir/mendel" index -nodes 127.0.0.1:7481,127.0.0.1:7482,127.0.0.1:7483,127.0.0.1:7484 \
  -groups 2 -kind protein -fasta "$workdir/db.fasta" -manifest "$workdir/cluster.mendel"

# One traced run per mode. Hit lines are indented; trace lines carry the
# per-stage timings plus the skipped= counter this gate asserts on.
run_mode() {
  "$workdir/mendel" query -manifest "$workdir/cluster.mendel" \
    -fasta "$workdir/queries.fasta" -max-hits 1000 -trace -prefilter "$1"
}
run_mode off    > "$workdir/off.out"
run_mode bloom  > "$workdir/bloom.out"
run_mode minhash > "$workdir/minhash.out"
for mode in off bloom minhash; do
  grep '^  ' "$workdir/$mode.out" | grep -v '^  \.\.\.' > "$workdir/$mode.hits" || true
done

status=0
: > recall_diff.txt
for mode in bloom minhash; do
  if ! diff -u "$workdir/off.hits" "$workdir/$mode.hits" \
      > "$workdir/$mode.diff" 2>&1; then
    {
      echo "=== -prefilter $mode lost or changed hits vs -prefilter off ==="
      cat "$workdir/$mode.diff"
    } >> recall_diff.txt
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "recall gate FAILED; see recall_diff.txt" >&2
  cat recall_diff.txt >&2
  exit "$status"
fi

# The bloom run must have skipped at least one group, or the gate proved
# nothing about the prefilter.
skipped=$(grep -o 'skipped=[0-9]*' "$workdir/bloom.out" | awk -F= '{s+=$2} END{print s+0}')
if [ "${skipped:-0}" -eq 0 ]; then
  echo "bloom prefilter skipped no groups on the gate corpus" >&2
  echo "=== bloom run skipped zero groups ===" >> recall_diff.txt
  exit 1
fi

# MinHash leg: stored signatures must match the corpus bit-for-bit and
# every Jaccard estimate must sit within 0.05 of the exact value.
"$workdir/mendel" similarity -manifest "$workdir/cluster.mendel" \
  -fasta "$workdir/queries.fasta" -top 3 -verify "$workdir/db.fasta" -bound 0.05

echo "recall gate ok: hits bit-identical across modes, $skipped group skips, minhash estimates within bound"
