package mendel

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VI), plus the ablations DESIGN.md calls out and micro-benchmarks of the
// hot paths. The full-size experiment runner with larger workloads is
// cmd/mendel-bench; these run the identical harness at benchmark-friendly
// scale so `go test -bench=.` regenerates every result quickly.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"mendel/internal/align"
	"mendel/internal/bench"
	"mendel/internal/matrix"
	"mendel/internal/metric"
	"mendel/internal/node"
	"mendel/internal/seq"
	"mendel/internal/vptree"
)

// benchScale is the workload used by the figure benchmarks.
func benchScale() bench.Scale {
	s := bench.TestScale()
	s.Nodes = 8
	s.Groups = 4
	s.DBSequences = 60
	s.SeqLen = 400
	s.QueriesPerPoint = 2
	return s
}

// BenchmarkTable1Params covers Table I: the full parameter validation path
// exercised once per query.
func BenchmarkTable1Params(b *testing.B) {
	p := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5LoadBalance regenerates Fig. 5 (flat vs two-tier placement).
func BenchmarkFig5LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.Spread(res.TwoTierPct), "two-tier-spread-%")
		b.ReportMetric(bench.Spread(res.FlatPct), "flat-spread-%")
	}
}

// BenchmarkFig6aQueryLength regenerates Fig. 6a (turnaround vs query
// length, Mendel vs BLAST).
func BenchmarkFig6aQueryLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6a(benchScale(), []int{100, 200, 300})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.MendelMS, "mendel-ms@max-len")
		b.ReportMetric(last.BlastMS, "blast-ms@max-len")
	}
}

// BenchmarkFig6bDatabaseSize regenerates Fig. 6b (turnaround vs database
// size).
func BenchmarkFig6bDatabaseSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6b(benchScale(), []int{20, 40, 80}, 150)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		if first.MendelMS > 0 {
			b.ReportMetric(last.MendelMS/first.MendelMS, "mendel-growth-x")
		}
		if first.BlastMS > 0 {
			b.ReportMetric(last.BlastMS/first.BlastMS, "blast-growth-x")
		}
	}
}

// BenchmarkFig6cClusterScaling regenerates Fig. 6c (turnaround vs cluster
// size).
func BenchmarkFig6cClusterScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6c(benchScale(), []int{4, 8, 16}, 100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].CriticalMS, "critical-ms@4nodes")
		b.ReportMetric(res.Points[len(res.Points)-1].CriticalMS, "critical-ms@16nodes")
	}
}

// BenchmarkFig6dSensitivity regenerates Fig. 6d (recall vs similarity).
func BenchmarkFig6dSensitivity(b *testing.B) {
	s := benchScale()
	s.DBSequences = 20
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6d(s, []float64{0.9, 0.6, 0.4}, 6, 400)
		if err != nil {
			b.Fatal(err)
		}
		low := res.Points[len(res.Points)-1]
		b.ReportMetric(low.MendelRecall, "mendel-recall@low-sim")
		b.ReportMetric(low.BlastRecall, "blast-recall@low-sim")
	}
}

// BenchmarkAblationDepthThreshold regenerates the vp-prefix depth ablation.
func BenchmarkAblationDepthThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblateDepth(benchScale(), []int{2, 4, 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSecondTier regenerates the intra-group placement
// ablation (flat SHA-1 vs second-tier vp-hash).
func BenchmarkAblationSecondTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblateTier2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FlatTouchedAvg, "flat-parallelism")
		b.ReportMetric(res.VPTouchedAvg, "vp-parallelism")
	}
}

// BenchmarkAblationBatchInsert regenerates the vp-tree population ablation.
func BenchmarkAblationBatchInsert(b *testing.B) {
	s := benchScale()
	s.DBSequences = 10
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblateInsert(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBucketSize regenerates the leaf bucket ablation.
func BenchmarkAblationBucketSize(b *testing.B) {
	s := benchScale()
	s.DBSequences = 10
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblateBucket(s, []int{8, 32, 128}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

func randomProteinB(rng *rand.Rand, n int) []byte {
	const letters = "ARNDCQEGHILKMFPSTWYV"
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return out
}

// BenchmarkVPTreeNearest measures local 12-NN lookups over 50k segments,
// the per-node inner loop of every subquery.
func BenchmarkVPTreeNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := metric.ForKind(seq.Protein)
	items := make([]vptree.Item, 50000)
	for i := range items {
		items[i] = vptree.Item{Key: randomProteinB(rng, 16), Ref: uint64(i)}
	}
	tree := vptree.Build(m, 0, 1, items)
	queries := make([][]byte, 64)
	for i := range queries {
		queries[i] = randomProteinB(rng, 16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(queries[i%len(queries)], 12)
	}
}

// BenchmarkMendelDistance measures the protein segment metric.
func BenchmarkMendelDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := metric.ForKind(seq.Protein)
	x := randomProteinB(rng, 16)
	y := randomProteinB(rng, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

// BenchmarkSmithWaterman measures the ground-truth aligner on 200x400.
func BenchmarkSmithWaterman(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	q := randomProteinB(rng, 200)
	s := randomProteinB(rng, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		align.SmithWaterman(q, s, matrix.BLOSUM62)
	}
}

// BenchmarkBandedSW measures the gapped extension kernel.
func BenchmarkBandedSW(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	q := randomProteinB(rng, 200)
	s := append(append([]byte{}, q...), randomProteinB(rng, 200)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		align.BandedSmithWaterman(q, s, -8, 8, matrix.BLOSUM62)
	}
}

// BenchmarkEndToEndSearch measures a whole distributed query on an indexed
// in-process cluster.
func BenchmarkEndToEndSearch(b *testing.B) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig(Protein)
	cfg.Groups = 4
	cluster, err := NewInProcess(cfg, 8)
	if err != nil {
		b.Fatal(err)
	}
	db := NewSet(Protein)
	for i := 0; i < 100; i++ {
		if _, err := db.Add(fmt.Sprintf("ref%03d", i), randomProteinB(rng, 400)); err != nil {
			b.Fatal(err)
		}
	}
	if err := cluster.Index(ctx, db); err != nil {
		b.Fatal(err)
	}
	query := db.Seqs[37].Data[100:300]
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Search(ctx, query, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrefilterQuery measures the end-to-end cost of a short foreign
// query (the sketch prefilter's best case: its windows share no k-mer with
// the database, so every group is provably safe to skip) with the prefilter
// off vs in bloom mode. The data shape matches BenchmarkEndToEndSearch; both
// variants sit in the CI regression gate.
func BenchmarkPrefilterQuery(b *testing.B) {
	for _, mode := range []PrefilterMode{PrefilterOff, PrefilterBloom} {
		b.Run("prefilter="+mode.String(), func(b *testing.B) {
			ctx := context.Background()
			rng := rand.New(rand.NewSource(5))
			cfg := DefaultConfig(Protein)
			cfg.Groups = 4
			cluster, err := NewInProcess(cfg, 8)
			if err != nil {
				b.Fatal(err)
			}
			db := NewSet(Protein)
			for i := 0; i < 100; i++ {
				if _, err := db.Add(fmt.Sprintf("ref%03d", i), randomProteinB(rng, 400)); err != nil {
					b.Fatal(err)
				}
			}
			if err := cluster.Index(ctx, db); err != nil {
				b.Fatal(err)
			}
			cluster.SetPrefilterMode(mode)
			query := randomProteinB(rng, 24)
			p := DefaultParams()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Search(ctx, query, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTracingOverhead measures the end-to-end search cost with the
// observability stack attached, comparing the unsampled hot path
// (sampled=0: the head sampler rejects every query, so no node records or
// ships a span) against full tracing (sampled=1: every span recorded,
// shipped inline, and exemplar-labelled). The data shape matches
// BenchmarkEndToEndSearch; both variants sit in the CI regression gate, the
// unsampled one pinning tracing's cost for untraced queries near zero.
func BenchmarkTracingOverhead(b *testing.B) {
	for _, rate := range []float64{-1, 1} {
		name := "sampled=0"
		if rate > 0 {
			name = "sampled=1"
		}
		b.Run(name, func(b *testing.B) {
			ctx := context.Background()
			rng := rand.New(rand.NewSource(5))
			cfg := DefaultConfig(Protein)
			cfg.Groups = 4
			cfg.TraceSampleRate = rate
			cluster, err := NewInProcess(cfg, 8)
			if err != nil {
				b.Fatal(err)
			}
			cluster.Observe(NewMetricsRegistry(), NewQueryTracer(0))
			db := NewSet(Protein)
			for i := 0; i < 100; i++ {
				if _, err := db.Add(fmt.Sprintf("ref%03d", i), randomProteinB(rng, 400)); err != nil {
					b.Fatal(err)
				}
			}
			if err := cluster.Index(ctx, db); err != nil {
				b.Fatal(err)
			}
			query := db.Seqs[37].Data[100:300]
			p := DefaultParams()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Search(ctx, query, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchmarkIngest measures ingest residues/sec with the given pipeline
// (workers = 1 serial, 0 parallel default).
func benchmarkIngest(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(6))
	db := NewSet(Protein)
	for i := 0; i < 50; i++ {
		if _, err := db.Add(fmt.Sprintf("ref%03d", i), randomProteinB(rng, 400)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(Protein)
		cfg.Groups = 2
		cfg.IngestWorkers = workers
		cluster, err := NewInProcess(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Index(context.Background(), db); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(db.TotalResidues()*b.N)/b.Elapsed().Seconds(), "residues/s")
}

// BenchmarkIndexThroughput measures ingest residues/sec through the default
// (parallel) pipeline.
func BenchmarkIndexThroughput(b *testing.B) { benchmarkIngest(b, 0) }

// BenchmarkIndexThroughputSerial is the IngestWorkers=1 baseline the
// parallel pipeline's speedup is quoted against.
func BenchmarkIndexThroughputSerial(b *testing.B) { benchmarkIngest(b, 1) }

// BenchmarkRepairThroughput measures anti-entropy re-replication speed:
// every iteration wipes one storage node (a fresh empty node takes over its
// address and is re-bootstrapped) and a full Cluster.Repair restores its
// block inventory from the surviving replicas, reporting blocks/sec moved.
func BenchmarkRepairThroughput(b *testing.B) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(8))
	cfg := DefaultConfig(Protein)
	cfg.Groups = 2
	cfg.Replicas = 2
	cluster, err := NewInProcess(cfg, 4)
	if err != nil {
		b.Fatal(err)
	}
	db := NewSet(Protein)
	for i := 0; i < 50; i++ {
		if _, err := db.Add(fmt.Sprintf("ref%03d", i), randomProteinB(rng, 400)); err != nil {
			b.Fatal(err)
		}
	}
	if err := cluster.Index(ctx, db); err != nil {
		b.Fatal(err)
	}
	victim := cluster.Nodes[1].Addr()
	hm := NewHealthMonitor(cluster.Cluster, DefaultHealthConfig())
	moved := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cluster.Net.Register(victim, node.New(victim, cluster.Net.Bind(victim)))
		hm.ProbeOnce(ctx) // re-bootstrap the wiped node
		b.StartTimer()
		rep, err := cluster.Repair(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if rep.BlocksMoved == 0 {
			b.Fatal("repair moved no blocks")
		}
		moved += rep.BlocksMoved
	}
	b.ReportMetric(float64(moved)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkBlastBaselineSearch measures the comparator on the same data
// shape as BenchmarkEndToEndSearch.
func BenchmarkBlastBaselineSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	db := NewSet(Protein)
	for i := 0; i < 100; i++ {
		if _, err := db.Add(fmt.Sprintf("ref%03d", i), randomProteinB(rng, 400)); err != nil {
			b.Fatal(err)
		}
	}
	bdb, err := NewBlastDB(db)
	if err != nil {
		b.Fatal(err)
	}
	query := db.Seqs[37].Data[100:300]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bdb.Search(query, 10); err != nil {
			b.Fatal(err)
		}
	}
}
