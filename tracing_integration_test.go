package mendel

// Integration test of the distributed tracing tentpole: a real TCP cluster
// on loopback, a sampled query, and the coordinator's assembled cross-node
// span tree served at /debug/trace/{id}.

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDistributedTraceAssemblyOverTCP(t *testing.T) {
	// Four TCP storage nodes in two groups, each with its own tracer —
	// exactly what cmd/mendel-node now always attaches — so node-side spans
	// are recorded and shipped even across process-style tracer boundaries.
	var addrs []string
	for i := 0; i < 4; i++ {
		s, err := ServeNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.Observe(NewMetricsRegistry(), NewQueryTracer(0))
		addrs = append(addrs, s.Addr())
	}
	cfg := DefaultConfig(Protein)
	cfg.Groups = 2
	cluster, err := NewTCPCluster(cfg, [][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	tracer := NewQueryTracer(0)
	cluster.SetObservability(reg, tracer)

	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	db := buildSet(t, rng, 12, 300)
	if err := cluster.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	hits, tr, err := cluster.SearchTrace(ctx, db.Seqs[7].Data[30:150], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if len(tr.TraceID) != 32 {
		t.Fatalf("TraceID = %q, want 32 hex chars", tr.TraceID)
	}

	// The acceptance bar: ONE assembled tree containing the coordinator's
	// pipeline stages and child spans from at least two distinct storage
	// nodes, every span stamped with the query's trace ID.
	spans := cluster.FetchTrace(ctx, tr.TraceID)
	if len(spans) != 1 {
		t.Fatalf("FetchTrace assembled %d roots, want 1: %+v", len(spans), spans)
	}
	tree := spans[0]
	if tree.Name != "search" {
		t.Fatalf("assembled root is %q, want search", tree.Name)
	}
	for _, stage := range []string{"decompose", "fanout", "group", "group_search", "local_search"} {
		if tree.Find(stage) == nil {
			t.Errorf("assembled tree lacks stage %q", stage)
		}
	}
	nodesSeen := map[string]bool{}
	var walk func(s SpanSnapshot)
	walk = func(s SpanSnapshot) {
		if s.TraceID != tr.TraceID {
			t.Errorf("span %s carries TraceID %q, want %q", s.Name, s.TraceID, tr.TraceID)
		}
		if s.Node != "" {
			nodesSeen[s.Node] = true
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tree)
	if len(nodesSeen) < 2 {
		t.Fatalf("assembled tree has spans from %d distinct nodes (%v), want >= 2", len(nodesSeen), nodesSeen)
	}

	// The slowest-trace exemplar links /metrics back to this trace.
	for _, s := range reg.Snapshot() {
		if s.Name == "search_ns" && s.Exemplar != tr.TraceID {
			t.Errorf("search_ns exemplar = %q, want %q", s.Exemplar, tr.TraceID)
		}
	}

	// The same tree must be reachable over the coordinator's HTTP surface.
	srv := httptest.NewServer(MetricsHandlerWithTraces(reg, tracer, cluster.TraceSource(ctx)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/trace/" + tr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace/{id}: status %d\n%s", resp.StatusCode, body)
	}
	text := string(body)
	if !strings.Contains(text, "search") || !strings.Contains(text, "local_search") {
		t.Errorf("trace endpoint output incomplete:\n%s", text)
	}
	distinct := 0
	for n := range nodesSeen {
		if strings.Contains(text, "@"+n) {
			distinct++
		}
	}
	if distinct < 2 {
		t.Errorf("trace endpoint names %d nodes, want >= 2:\n%s", distinct, text)
	}
	if resp, err := http.Get(srv.URL + "/metrics"); err == nil {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(b), "search_ns_slowest_trace "+tr.TraceID) {
			t.Errorf("/metrics lacks the exemplar line for %s", tr.TraceID)
		}
	}
}

func TestTraceSamplingDisablesSpans(t *testing.T) {
	cfg := DefaultConfig(Protein)
	cfg.Groups = 2
	cfg.TraceSampleRate = -1 // tracing off; nodes must record nothing either
	cluster, err := NewInProcess(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	tracer := NewQueryTracer(0)
	cluster.Observe(reg, tracer)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(12))
	db := buildSet(t, rng, 10, 300)
	if err := cluster.Index(ctx, db); err != nil {
		t.Fatal(err)
	}
	_, tr, err := cluster.SearchTrace(ctx, db.Seqs[3].Data[40:160], DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "" {
		t.Errorf("unsampled query minted trace %q", tr.TraceID)
	}
	if got := tracer.Recent(0); len(got) != 0 {
		t.Errorf("unsampled query recorded %d spans: %+v", len(got), got)
	}
	for _, s := range reg.Snapshot() {
		if s.Name == "search_ns" && s.Exemplar != "" {
			t.Errorf("unsampled query set exemplar %q", s.Exemplar)
		}
	}
}
