// Package mendel is a distributed storage framework for similarity
// searching over genomic sequencing data, reproducing Tolooee, Pallickara
// and Ben-Hur, "Mendel: A Distributed Storage Framework for Similarity
// Searching over Sequencing Data" (IEEE IPDPS 2016).
//
// Mendel fragments DNA or protein reference sequences into fixed-length
// inverted index blocks, disperses them over a two-tier distributed hash
// table — a vantage-point prefix tree groups similar blocks onto the same
// set of nodes, and a flat SHA-1 ring balances load within each group — and
// indexes each node's blocks in a memory-resident dynamic vantage point
// tree. Alignment queries are decomposed into subqueries, resolved by
// distributed nearest-neighbour search, extended into anchors, aggregated
// at group and system entry points, gap-extended, and ranked by
// Karlin–Altschul expectation value.
//
// # Quick start
//
//	cluster, _ := mendel.NewInProcess(mendel.DefaultConfig(mendel.Protein), 8)
//	db, _ := mendel.ReadFASTA(f, mendel.Protein)
//	_ = cluster.Index(ctx, db)
//	hits, _ := cluster.Search(ctx, query, mendel.DefaultParams())
//
// For multi-process deployments run one cmd/mendel-node per machine and
// assemble a cluster with NewTCPCluster.
package mendel

import (
	"io"
	"log/slog"
	"net/http"
	"time"

	"mendel/internal/blast"
	"mendel/internal/core"
	"mendel/internal/gateway"
	"mendel/internal/matrix"
	"mendel/internal/obs"
	"mendel/internal/seq"
	"mendel/internal/transport"
	"mendel/internal/wire"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Config fixes the cluster-wide constants (block geometry, group
	// count, vp-prefix depth threshold, ...).
	Config = core.Config
	// Cluster is a coordinator handle for indexing and searching.
	Cluster = core.Cluster
	// InProcess is a whole cluster wired through an in-memory transport.
	InProcess = core.InProcess
	// Hit is one reported alignment with bit score and E-value.
	Hit = core.Hit
	// Params are the query parameters of the paper's Table I.
	Params = wire.Params
	// Kind selects DNA or Protein mode.
	Kind = seq.Kind
	// Set is an ordered collection of validated sequences.
	Set = seq.Set
	// Sequence is a validated biological sequence.
	Sequence = seq.Sequence
	// SequenceID identifies a reference sequence within a deployment.
	SequenceID = seq.ID
	// LatencyModel simulates LAN delay on the in-memory transport.
	LatencyModel = transport.LatencyModel
	// SearchStats is the per-stage execution trace of one search.
	SearchStats = core.Trace
	// TranslatedHit is a protein hit from a six-frame translated DNA query.
	TranslatedHit = core.TranslatedHit
	// BatchResult pairs one query of a SearchAll batch with its outcome.
	BatchResult = core.BatchResult
	// PrefilterMode selects the sketch-based group prefilter consulted
	// before query fan-out (off, bloom or minhash).
	PrefilterMode = core.PrefilterMode
	// SimilarityHit is one alignment-free MinHash similarity result.
	SimilarityHit = core.SimilarityHit
)

// Sketch prefilter modes, settable with Cluster.SetPrefilterMode and parsed
// from the CLIs' -prefilter flag by ParsePrefilterMode.
const (
	PrefilterOff     = core.PrefilterOff
	PrefilterBloom   = core.PrefilterBloom
	PrefilterMinHash = core.PrefilterMinHash
)

// ParsePrefilterMode parses the -prefilter flag values off|bloom|minhash.
func ParsePrefilterMode(s string) (PrefilterMode, error) { return core.ParsePrefilterMode(s) }

// MinHashesOf computes the bottom-k MinHash signature of a sequence under
// the cluster configuration's sketch params — the query-side half of
// Cluster.Similarity, exported for the similarity verification harness.
func MinHashesOf(data []byte, cfg Config) []uint64 { return core.MinHashesOf(data, cfg) }

// ExactJaccard computes the exact canonical k-mer Jaccard similarity of two
// sequences under the cluster configuration's sketch params: the ground
// truth `mendel similarity -verify` compares the MinHash estimates against.
func ExactJaccard(a, b []byte, cfg Config) float64 { return core.ExactJaccard(a, b, cfg) }

// Observability re-exports. A MetricsRegistry accumulates counters, gauges
// and mergeable latency histograms; a QueryTracer records a span tree per
// query decomposed into the paper's pipeline stages. Attach them with
// InProcess.Observe, NodeServer.Observe or Cluster.SetObservability, and
// expose them over HTTP (with pprof) via ServeMetrics.
type (
	// MetricsRegistry is a concurrency-safe metrics sink.
	MetricsRegistry = obs.Registry
	// QueryTracer records per-query span trees and a slow-query log.
	QueryTracer = obs.Tracer
	// MetricSnapshot is one exported metric at a point in time.
	MetricSnapshot = obs.Snapshot
	// SpanSnapshot is an immutable copy of a finished query span tree.
	SpanSnapshot = obs.SpanSnapshot
	// SpanAttr is one integer attribute recorded on a span.
	SpanAttr = obs.Attr
	// NodeMetrics is one node's registry snapshot, as returned by
	// Cluster.MetricsDetailed.
	NodeMetrics = wire.MetricsResult
	// TraceContext is the per-query distributed trace identity carried on
	// every RPC (128-bit trace ID, span ID, head-sampling decision).
	TraceContext = obs.TraceContext
	// TraceSource resolves a trace ID to its assembled cross-node span
	// tree; Cluster.TraceSource produces one backed by the whole cluster.
	TraceSource = obs.TraceSource
	// HealthSource supplies the JSON value served from /debug/health;
	// HealthMonitor.Source produces one backed by the cluster health view.
	HealthSource = obs.HealthSource
)

// Windowed-telemetry re-exports. A TimeSeries turns the point-in-time
// registry into a fixed-capacity ring of per-interval samples (counters
// delta-encoded into rates, histograms windowed into per-interval
// quantiles); a Watchdog evaluates SLO objectives over fast/slow burn-rate
// windows on every sample and serves its ok/warn/page state at /debug/slo;
// a ProfileCapturer writes pprof CPU+heap pairs into a bounded on-disk
// ring on first breach. Build the HTTP surface with MetricsSurface.
type (
	// TimeSeries is a windowed sampler over a MetricsRegistry.
	TimeSeries = obs.TimeSeries
	// TimeSeriesConfig tunes the sampling interval, ring capacity and
	// clock (zero value: 1s × 300 samples, wall clock).
	TimeSeriesConfig = obs.TimeSeriesConfig
	// MetricsHistory is an ordered window of telemetry points.
	MetricsHistory = obs.History
	// MetricsPoint is one interval of windowed telemetry.
	MetricsPoint = obs.Point
	// NodeMetricsHistory is one node's windowed series, as returned by
	// Cluster.HistoryDetailed.
	NodeMetricsHistory = wire.MetricsHistoryResult
	// ClusterMetricsHistory is the /metrics/history response body.
	ClusterMetricsHistory = obs.ClusterHistory
	// HistorySource supplies windowed histories for /metrics/history;
	// Cluster.HistorySource produces one backed by the whole cluster.
	HistorySource = obs.HistorySource
	// RuntimeCollector folds goroutine/heap/GC readings into a registry.
	RuntimeCollector = obs.RuntimeCollector
	// Watchdog is the SLO burn-rate evaluator behind /debug/slo.
	Watchdog = obs.Watchdog
	// SLOConfig sets the burn-rate windows and objectives.
	SLOConfig = obs.SLOConfig
	// SLOObjective is one SLO target (latency quantile, ratio or growth).
	SLOObjective = obs.Objective
	// SLOStatus is the watchdog's full evaluated state.
	SLOStatus = obs.SLOStatus
	// ProfileCapturer writes breach-triggered pprof profiles to a bounded
	// on-disk ring.
	ProfileCapturer = obs.ProfileCapturer
	// ProfileConfig tunes the profile directory, CPU duration and ring
	// size.
	ProfileConfig = obs.ProfileConfig
	// MetricsSurface bundles every observability sink behind one HTTP
	// mux: /metrics, /metrics/history, /debug/slo, /debug/health, spans,
	// traces and pprof.
	MetricsSurface = obs.Surface
)

// NewTimeSeries builds a windowed sampler over reg; drive it with Run or
// attach it to a NodeServer via StartHistory.
func NewTimeSeries(reg *MetricsRegistry, cfg TimeSeriesConfig) *TimeSeries {
	return obs.NewTimeSeries(reg, cfg)
}

// NewRuntimeCollector builds a collector publishing goroutine count, heap
// bytes and GC pause deltas into reg; register its Collect on a TimeSeries.
func NewRuntimeCollector(reg *MetricsRegistry) *RuntimeCollector {
	return obs.NewRuntimeCollector(reg)
}

// NewWatchdog builds an SLO watchdog over ts; call Watch to evaluate on
// every sample.
func NewWatchdog(ts *TimeSeries, cfg SLOConfig) *Watchdog { return obs.NewWatchdog(ts, cfg) }

// NewProfileCapturer builds a breach-triggered pprof capturer rooted at
// cfg.Dir; wire its OnBreach onto a Watchdog.
func NewProfileCapturer(cfg ProfileConfig) (*ProfileCapturer, error) {
	return obs.NewProfileCapturer(cfg)
}

// GatewaySLOObjectives builds the standard serving-path objective set:
// windowed p95 search latency, error rate, shed rate and hint-queue
// growth. Zero thresholds disable the corresponding objective.
func GatewaySLOObjectives(p95 time.Duration, errRate, shedRate, hintSlope float64) []SLOObjective {
	return obs.GatewayObjectives(p95, errRate, shedRate, hintSlope)
}

// MergeMetricsHistories folds per-node windowed series into one
// cluster-wide history (counter deltas and gauges sum, histogram buckets
// add, points aligned from the most recent backwards).
func MergeMetricsHistories(hs ...MetricsHistory) MetricsHistory { return obs.MergeHistories(hs...) }

// Serving-layer re-exports. A Gateway turns a coordinator into a long-lived
// concurrent query service: an HTTP/JSON API (POST /v1/search, POST
// /v1/ingest, GET /v1/status) over one shared Cluster, with admission
// control (bounded in-flight window plus a FIFO wait queue; overload sheds
// with 429 + Retry-After), per-tenant token-bucket quotas keyed by the
// X-Mendel-Tenant header, and per-request deadlines. Mount its Routes onto
// the observability mux with ServeMetricsWithRoutes so the API and /metrics
// share one listener. Cluster.EnableFanOutCoalescing complements it by
// batching concurrent queries' per-group RPCs.
type (
	// Gateway is the concurrent query-serving layer over one Cluster.
	Gateway = gateway.Gateway
	// GatewayConfig tunes admission control, quotas, and deadlines.
	GatewayConfig = gateway.Config
	// CoalesceConfig tunes cross-query fan-out batching.
	CoalesceConfig = core.CoalesceConfig
	// Route is an application route mounted onto the observability mux.
	Route = obs.Route
)

// NewGateway builds a query gateway over an indexed cluster. reg receives
// the gw_* metrics and may be shared with the cluster's registry; nil
// disables gateway metrics.
func NewGateway(c *Cluster, cfg GatewayConfig, reg *MetricsRegistry) *Gateway {
	return gateway.New(c, cfg, reg)
}

// ServeMetricsWithRoutes is ServeMetricsWithHealth plus application routes
// (e.g. Gateway.Routes) mounted onto the same mux.
func ServeMetricsWithRoutes(addr string, reg *MetricsRegistry, tr *QueryTracer, src TraceSource, health HealthSource, routes ...Route) (*http.Server, string, error) {
	return obs.ServeWithRoutes(addr, reg, tr, src, health, routes...)
}

// Self-healing re-exports. A HealthMonitor probes every node on a jittered
// interval, tracks per-node up/suspect/down state, replays hinted-handoff
// queues to recovered nodes and re-pushes topology; Cluster.Repair runs an
// anti-entropy pass that re-replicates blocks and sequence shards a node
// lost (e.g. after a crash-restart with empty state).
type (
	// HealthMonitor is the coordinator-side failure detector and recovery
	// driver.
	HealthMonitor = core.HealthMonitor
	// HealthConfig tunes the probe interval, jitter and down threshold.
	HealthConfig = core.HealthConfig
	// NodeHealth is one node's health record in a HealthMonitor snapshot.
	NodeHealth = core.NodeHealth
	// RepairReport summarizes one Cluster.Repair anti-entropy pass.
	RepairReport = core.RepairReport
)

// Node health states reported in NodeHealth.State.
const (
	HealthUp      = core.HealthUp
	HealthSuspect = core.HealthSuspect
	HealthDown    = core.HealthDown
)

// NewHealthMonitor creates a health monitor for the cluster. Zero-valued
// config fields take the defaults; start the probe loop with Run or drive it
// manually with ProbeOnce.
func NewHealthMonitor(c *Cluster, cfg HealthConfig) *HealthMonitor {
	return core.NewHealthMonitor(c, cfg)
}

// DefaultHealthConfig returns the production defaults (2s probe interval,
// 500ms jitter, down after 2 consecutive misses).
func DefaultHealthConfig() HealthConfig { return core.DefaultHealthConfig() }

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewQueryTracer creates a tracer retaining the most recent capacity root
// spans (0 uses the default).
func NewQueryTracer(capacity int) *QueryTracer { return obs.NewTracer(capacity) }

// MetricsHandler serves /metrics, /debug/spans, /debug/trace/{id},
// /debug/vars and /debug/pprof/* from the given sinks; either may be nil.
func MetricsHandler(reg *MetricsRegistry, tr *QueryTracer) http.Handler { return obs.Handler(reg, tr) }

// MetricsHandlerWithTraces is MetricsHandler with an explicit cross-node
// trace source backing /debug/trace/{id}; pass Cluster.TraceSource so the
// endpoint assembles node-side spans too. A nil src falls back to the
// tracer's own retained roots.
func MetricsHandlerWithTraces(reg *MetricsRegistry, tr *QueryTracer, src TraceSource) http.Handler {
	return obs.HandlerWithTraces(reg, tr, src)
}

// ServeMetrics starts an HTTP observability endpoint on addr (":0" picks a
// free port) and returns the server plus its bound address.
func ServeMetrics(addr string, reg *MetricsRegistry, tr *QueryTracer) (*http.Server, string, error) {
	return obs.Serve(addr, reg, tr)
}

// ServeMetricsWithTraces is ServeMetrics with a cross-node trace source
// backing /debug/trace/{id} (see MetricsHandlerWithTraces).
func ServeMetricsWithTraces(addr string, reg *MetricsRegistry, tr *QueryTracer, src TraceSource) (*http.Server, string, error) {
	return obs.ServeWithTraces(addr, reg, tr, src)
}

// MetricsHandlerWithHealth is MetricsHandlerWithTraces with a health source
// backing /debug/health; pass HealthMonitor.Source on a coordinator or
// NodeServer.HealthSource on a node. A nil health source serves 404 there.
func MetricsHandlerWithHealth(reg *MetricsRegistry, tr *QueryTracer, src TraceSource, health HealthSource) http.Handler {
	return obs.HandlerWithHealth(reg, tr, src, health)
}

// ServeMetricsWithHealth is ServeMetricsWithTraces with a health source
// backing /debug/health (see MetricsHandlerWithHealth).
func ServeMetricsWithHealth(addr string, reg *MetricsRegistry, tr *QueryTracer, src TraceSource, health HealthSource) (*http.Server, string, error) {
	return obs.ServeWithHealth(addr, reg, tr, src, health)
}

// AssembleTraceSpans merges span trees collected from several tracers —
// coordinator roots plus node-shipped subtrees — into the deduplicated
// per-trace forest that /debug/trace/{id} serves.
func AssembleTraceSpans(spans []SpanSnapshot) []SpanSnapshot { return obs.AssembleTrace(spans) }

// NewLogger returns a structured logger writing one JSON object per line to
// w, with the given minimum level and constant attributes (a node address,
// a role) stamped on every record.
func NewLogger(w io.Writer, level slog.Level, attrs ...slog.Attr) *slog.Logger {
	return obs.NewLogger(w, level, attrs...)
}

// LoggerWithTrace returns l with the trace's 32-hex trace_id attribute
// attached, so log lines correlate with /debug/trace/{id}. Invalid contexts
// return l unchanged.
func LoggerWithTrace(l *slog.Logger, tc TraceContext) *slog.Logger { return obs.WithTrace(l, tc) }

// MergeMetricSnapshots merges per-node snapshots into cluster-wide totals;
// histogram buckets share a fixed layout, so quantiles survive the merge.
func MergeMetricSnapshots(groups ...[]MetricSnapshot) []MetricSnapshot {
	return obs.MergeSnapshots(groups...)
}

// Molecule kinds.
const (
	DNA     = seq.DNA
	Protein = seq.Protein
)

// DefaultConfig returns the framework defaults for a molecule kind.
func DefaultConfig(kind Kind) Config { return core.DefaultConfig(kind) }

// DefaultParams returns the Table I parameter defaults.
func DefaultParams() Params { return wire.DefaultParams() }

// NewInProcess assembles an in-process cluster of numNodes storage nodes.
func NewInProcess(cfg Config, numNodes int) (*InProcess, error) {
	return core.NewInProcess(cfg, numNodes)
}

// NewInProcessWithLatency is NewInProcess with simulated per-message LAN
// latency, for scalability experiments.
func NewInProcessWithLatency(cfg Config, numNodes int, l LatencyModel) (*InProcess, error) {
	return core.NewInProcess(cfg, numNodes, transport.WithLatency(l))
}

// ReadFASTA parses FASTA records into a sequence set.
func ReadFASTA(r io.Reader, kind Kind) (*Set, error) { return seq.ReadFASTA(r, kind) }

// WriteFASTA writes a sequence set in FASTA format.
func WriteFASTA(w io.Writer, set *Set, width int) error { return seq.WriteFASTA(w, set, width) }

// NewSet creates an empty sequence set of the given kind.
func NewSet(kind Kind) *Set { return seq.NewSet(kind) }

// Baseline re-exports: the from-scratch BLAST implementation used as the
// single-machine comparator in the paper's evaluation.
type (
	// BlastDB is an indexed single-machine BLAST database.
	BlastDB = blast.DB
	// BlastConfig controls the BLAST heuristics.
	BlastConfig = blast.Config
	// BlastHit is one BLAST alignment.
	BlastHit = blast.Hit
)

// NewBlastDB indexes a sequence set for the BLAST baseline using the
// conventional defaults for its kind (blastp word 3 / T=11, blastn 11-mers).
func NewBlastDB(set *Set) (*BlastDB, error) {
	if set.Kind == DNA {
		return blast.NewDB(set, blast.DefaultDNAConfig(), matrix.DNAUnit)
	}
	return blast.NewDB(set, blast.DefaultProteinConfig(), matrix.BLOSUM62)
}
