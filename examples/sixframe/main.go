// Six-frame translated search (blastx-style): DNA reads from a sequencer
// are searched against a protein reference database by conceptually
// translating each read in all six reading frames. This is the classic
// workflow for annotating metagenomic reads against a protein knowledgebase
// like nr — the paper's motivating dataset.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"mendel"
)

const residues = "ARNDCQEGHILKMFPSTWYV"

// codonFor reverse-translates one amino acid (an arbitrary valid codon).
var codonFor = map[byte]string{
	'A': "GCT", 'R': "CGT", 'N': "AAT", 'D': "GAT", 'C': "TGT",
	'Q': "CAA", 'E': "GAA", 'G': "GGT", 'H': "CAT", 'I': "ATT",
	'L': "CTT", 'K': "AAA", 'M': "ATG", 'F': "TTT", 'P': "CCT",
	'S': "TCT", 'T': "ACT", 'W': "TGG", 'Y': "TAT", 'V': "GTT",
}

func randomProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = residues[rng.Intn(len(residues))]
	}
	return out
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))

	// Protein reference database on an in-process cluster.
	cfg := mendel.DefaultConfig(mendel.Protein)
	cfg.Groups = 3
	cluster, err := mendel.NewInProcess(cfg, 6)
	if err != nil {
		log.Fatal(err)
	}
	db := mendel.NewSet(mendel.Protein)
	for i := 0; i < 40; i++ {
		if _, err := db.Add(fmt.Sprintf("prot%03d", i), randomProtein(rng, 350)); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Index(ctx, db); err != nil {
		log.Fatal(err)
	}

	// A sequencing read covering residues 80-170 of prot017, with a frame
	// shift: 2 leading junk bases push the coding region into frame 2.
	var coding strings.Builder
	for _, aa := range db.Seqs[17].Data[80:170] {
		coding.WriteString(codonFor[aa])
	}
	read := []byte("GT" + coding.String() + "ACGTA")

	hits, err := cluster.SearchTranslated(ctx, read, mendel.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read of %d nt against %d proteins: %d translated hits\n\n",
		len(read), db.Len(), len(hits))
	for i, h := range hits {
		if i >= 3 {
			break
		}
		fmt.Printf("#%d %s  frame=%d  bits=%.1f  E=%.2g  q[%d:%d] s[%d:%d]\n",
			i+1, h.Name, h.Frame, h.Bits, h.E,
			h.Alignment.QStart, h.Alignment.QEnd,
			h.Alignment.SStart, h.Alignment.SEnd)
	}
	if len(hits) > 0 && hits[0].Name == "prot017" && hits[0].Frame == 2 {
		fmt.Println("\ncorrect protein recovered from the frame-shifted read")
	}
}
