// Metagenomics: the paper's motivating usage scenario (§I-A). DNA reads
// sampled from an environmental community are mapped against a reference
// database of known genomes; reads from organisms absent from the database
// stay unclassified. Mendel evaluates the read queries in parallel across
// the cluster while the abundance profile is tallied from the hits.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"mendel"
)

const bases = "ACGT"

func randomGenome(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

// sequenceRead extracts a read with sequencing errors (1% substitutions).
func sequenceRead(rng *rand.Rand, genome []byte, length int) []byte {
	start := rng.Intn(len(genome) - length + 1)
	read := append([]byte(nil), genome[start:start+length]...)
	for i := range read {
		if rng.Float64() < 0.01 {
			read[i] = bases[rng.Intn(4)]
		}
	}
	return read
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))

	// Reference database: five known microbial "genomes".
	species := []string{"e_coli", "s_aureus", "b_subtilis", "p_putida", "m_luteus"}
	db := mendel.NewSet(mendel.DNA)
	genomes := make(map[string][]byte)
	for _, name := range species {
		g := randomGenome(rng, 4000)
		genomes[name] = g
		if _, err := db.Add(name, append([]byte(nil), g...)); err != nil {
			log.Fatal(err)
		}
	}

	cfg := mendel.DefaultConfig(mendel.DNA)
	cfg.Groups = 3
	cluster, err := mendel.NewInProcess(cfg, 6)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Index(ctx, db); err != nil {
		log.Fatal(err)
	}

	// Environmental sample: 60 reads from known organisms at skewed
	// abundance, plus 15 reads from an organism missing from the database.
	type read struct {
		data   []byte
		origin string
	}
	var sample []read
	abundance := map[string]int{"e_coli": 25, "s_aureus": 15, "b_subtilis": 10, "p_putida": 6, "m_luteus": 4}
	for name, count := range abundance {
		for i := 0; i < count; i++ {
			sample = append(sample, read{sequenceRead(rng, genomes[name], 150), name})
		}
	}
	unknown := randomGenome(rng, 4000)
	for i := 0; i < 15; i++ {
		sample = append(sample, read{sequenceRead(rng, unknown, 150), "unknown"})
	}
	rng.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })

	// Map every read; classify by best hit.
	params := mendel.DefaultParams()
	params.Matrix = "DNA"
	params.Identity = 0.8
	params.MaxE = 1e-6

	// Map the whole sample in one concurrent batch — reads are independent,
	// so the cluster processes them in parallel.
	reads := make([][]byte, len(sample))
	for i, r := range sample {
		reads[i] = r.data
	}
	results := cluster.SearchAll(ctx, reads, params, 0)

	classified := map[string]int{}
	unclassified := 0
	correct, wrong := 0, 0
	for i, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		if len(res.Hits) == 0 {
			unclassified++
			if sample[i].origin != "unknown" {
				wrong++
			}
			continue
		}
		best := res.Hits[0].Name
		classified[best]++
		if best == sample[i].origin {
			correct++
		} else {
			wrong++
		}
	}

	fmt.Printf("mapped %d reads against %d reference genomes (%d residues)\n\n",
		len(sample), db.Len(), cluster.TotalResidues())
	names := make([]string, 0, len(classified))
	for n := range classified {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return classified[names[i]] > classified[names[j]] })
	fmt.Println("abundance profile:")
	for _, n := range names {
		fmt.Printf("  %-12s %3d reads (true: %d)\n", n, classified[n], abundance[n])
	}
	fmt.Printf("  %-12s %3d reads (true: 15)\n", "unclassified", unclassified)
	fmt.Printf("\ncorrectly assigned: %d/%d known-origin reads; misassigned or lost: %d\n",
		correct, len(sample)-15, wrong)
}
