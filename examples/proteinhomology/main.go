// Protein homology search: Mendel and the from-scratch BLAST baseline run
// side by side over the same database, at several query divergence levels —
// a miniature of the paper's Fig. 6a/6d comparisons showing turnaround and
// sensitivity per system.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mendel"
)

const residues = "ARNDCQEGHILKMFPSTWYV"

func randomProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = residues[rng.Intn(len(residues))]
	}
	return out
}

// mutateToSimilarity substitutes (1-sim) of the positions.
func mutateToSimilarity(rng *rand.Rand, in []byte, sim float64) []byte {
	out := append([]byte(nil), in...)
	for _, p := range rng.Perm(len(in))[:int(float64(len(in))*(1-sim))] {
		for {
			c := residues[rng.Intn(len(residues))]
			if c != out[p] {
				out[p] = c
				break
			}
		}
	}
	return out
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))

	// Shared database: 60 proteins of ~500 residues.
	db := mendel.NewSet(mendel.Protein)
	for i := 0; i < 60; i++ {
		if _, err := db.Add(fmt.Sprintf("nr%04d", i), randomProtein(rng, 500)); err != nil {
			log.Fatal(err)
		}
	}

	cfg := mendel.DefaultConfig(mendel.Protein)
	cfg.Groups = 4
	cluster, err := mendel.NewInProcess(cfg, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Index(ctx, db); err != nil {
		log.Fatal(err)
	}
	bdb, err := mendel.NewBlastDB(db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("similarity  system  time        top hit    found")
	fmt.Println("----------  ------  ----------  ---------  -----")
	target := 42 // query derives from db sequence nr0042
	for _, sim := range []float64{0.95, 0.80, 0.65, 0.50} {
		query := mutateToSimilarity(rng, db.Seqs[target].Data[100:350], sim)

		params := mendel.DefaultParams()
		if sim < 0.6 {
			params.Identity = 0.15
			params.CScore = 0.2
			params.Neighbors = 16
		}
		start := time.Now()
		mHits, err := cluster.Search(ctx, query, params)
		if err != nil {
			log.Fatal(err)
		}
		mTime := time.Since(start)
		report("mendel", sim, mTime, mHits, target)

		start = time.Now()
		bHits, err := bdb.Search(query, params.MaxE)
		if err != nil {
			log.Fatal(err)
		}
		bTime := time.Since(start)
		reportBlast("blast", sim, bTime, bHits, target)
	}
}

func report(system string, sim float64, d time.Duration, hits []mendel.Hit, target int) {
	top, found := "-", "no"
	if len(hits) > 0 {
		top = hits[0].Name
		if int(hits[0].Seq) == target {
			found = "yes"
		}
	}
	fmt.Printf("%9.0f%%  %-6s  %-10v  %-9s  %s\n", sim*100, system, d.Round(time.Microsecond), top, found)
}

func reportBlast(system string, sim float64, d time.Duration, hits []mendel.BlastHit, target int) {
	top, found := "-", "no"
	if len(hits) > 0 {
		top = hits[0].Name
		if int(hits[0].Seq) == target {
			found = "yes"
		}
	}
	fmt.Printf("%9.0f%%  %-6s  %-10v  %-9s  %s\n", sim*100, system, d.Round(time.Microsecond), top, found)
}
