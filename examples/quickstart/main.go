// Quickstart: stand up an in-process Mendel cluster, index a small protein
// database, and run one similarity search — the minimal end-to-end use of
// the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mendel"
)

const residues = "ARNDCQEGHILKMFPSTWYV"

func randomProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = residues[rng.Intn(len(residues))]
	}
	return out
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	// 1. An eight-node cluster in four similarity groups, all in-process.
	cfg := mendel.DefaultConfig(mendel.Protein)
	cfg.Groups = 4
	cluster, err := mendel.NewInProcess(cfg, 8)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A small reference database: 25 random proteins of 400 residues.
	db := mendel.NewSet(mendel.Protein)
	for i := 0; i < 25; i++ {
		if _, err := db.Add(fmt.Sprintf("protein-%02d", i), randomProtein(rng, 400)); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Index(ctx, db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d sequences (%d residues) across %d nodes in %d groups\n",
		cluster.NumSequences(), cluster.TotalResidues(), 8, cfg.Groups)

	// 3. Query with a mutated excerpt of protein-13 (10% substitutions).
	query := append([]byte(nil), db.Seqs[13].Data[120:280]...)
	for i := 0; i < len(query); i += 10 {
		query[i] = residues[rng.Intn(len(residues))]
	}
	hits, err := cluster.Search(ctx, query, mendel.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("query of %d residues returned %d hits\n\n", len(query), len(hits))
	for i, h := range hits {
		if i >= 3 {
			break
		}
		fmt.Printf("#%d %s  bits=%.1f  E=%.2g  identity=%.0f%%\n",
			i+1, h.Name, h.Bits, h.E,
			100*h.Alignment.Identity(query, db.Seqs[h.Seq].Data))
	}
}
