// Distributed deployment: six real TCP storage nodes on localhost, a
// coordinator over the TCP transport, and manifest persistence — the same
// path cmd/mendel-node and cmd/mendel use across machines.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"mendel"
)

const residues = "ARNDCQEGHILKMFPSTWYV"

func randomProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = residues[rng.Intn(len(residues))]
	}
	return out
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(31))

	// Start six storage nodes on loopback (in separate processes these
	// would be `mendel-node` daemons on different machines).
	var addrs []string
	for i := 0; i < 6; i++ {
		srv, err := mendel.ServeNode("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
		fmt.Printf("node %d listening on %s\n", i, srv.Addr())
	}

	// Coordinator with three groups of two nodes.
	cfg := mendel.DefaultConfig(mendel.Protein)
	cfg.Groups = 3
	groups := [][]string{
		{addrs[0], addrs[1]},
		{addrs[2], addrs[3]},
		{addrs[4], addrs[5]},
	}
	cluster, err := mendel.NewTCPCluster(cfg, groups)
	if err != nil {
		log.Fatal(err)
	}

	db := mendel.NewSet(mendel.Protein)
	for i := 0; i < 40; i++ {
		if _, err := db.Add(fmt.Sprintf("ref%03d", i), randomProtein(rng, 400)); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.Index(ctx, db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindexed %d residues over TCP\n", cluster.TotalResidues())

	stats, err := cluster.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		fmt.Printf("  %s holds %d blocks\n", s.Node, s.Blocks)
	}

	// Persist the coordinator state, then resume from the manifest as a
	// brand-new coordinator — the nodes keep their data.
	var manifest bytes.Buffer
	if err := mendel.SaveManifest(cluster, &manifest); err != nil {
		log.Fatal(err)
	}
	resumed, err := mendel.LoadManifestTCP(&manifest)
	if err != nil {
		log.Fatal(err)
	}

	query := db.Seqs[11].Data[80:240]
	hits, err := resumed.Search(ctx, query, mendel.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresumed coordinator found %d hits; top: %s (E=%.2g)\n",
		len(hits), hits[0].Name, hits[0].E)
}
