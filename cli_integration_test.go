package mendel

// End-to-end test of the shipped binaries: mendel-datagen generates a FASTA
// database, two mendel-node daemons serve storage over TCP, and the mendel
// CLI indexes, queries, inspects stats, and — after the nodes checkpoint
// to disk and restart — queries again without re-indexing.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startNode launches a mendel-node daemon and returns its bound address and
// a stopper that delivers SIGTERM and waits for exit. When the daemon runs
// with -metrics-addr it announces the metrics URL before the listen line;
// startNodeMetrics exposes it.
func startNode(t *testing.T, bin string, args ...string) (string, func()) {
	t.Helper()
	addr, _, stop := startNodeMetrics(t, bin, args...)
	return addr, stop
}

func startNodeMetrics(t *testing.T, bin string, args ...string) (string, string, func()) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addr, metricsURL := "", ""
	deadline := time.After(10 * time.Second)
	lineCh := make(chan string, 4)
	go func() {
		for sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	for addr == "" {
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatal("mendel-node exited before announcing its address")
			}
			if strings.Contains(line, "metrics on ") {
				metricsURL = strings.TrimSpace(line[strings.Index(line, "metrics on ")+len("metrics on "):])
				metricsURL = strings.TrimSuffix(metricsURL, "/metrics")
			}
			if strings.Contains(line, "listening on ") {
				addr = strings.TrimSpace(line[strings.Index(line, "listening on ")+len("listening on "):])
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("timed out waiting for mendel-node to start")
		}
	}
	go func() {
		for range lineCh {
		}
	}()
	stop := func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	return addr, metricsURL, stop
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// runToolFor runs a long-lived command (watch loops) for roughly d, then
// stops it with SIGTERM — the loops exit cleanly on it — and returns the
// combined output produced so far.
func runToolFor(t *testing.T, d time.Duration, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(d)
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, buf.String())
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-done
		t.Fatalf("%s %s ignored SIGTERM\n%s", filepath.Base(bin), strings.Join(args, " "), buf.String())
	}
	return buf.String()
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	dir := t.TempDir()
	nodeBin := buildTool(t, dir, "./cmd/mendel-node")
	cliBin := buildTool(t, dir, "./cmd/mendel")
	genBin := buildTool(t, dir, "./cmd/mendel-datagen")

	// Dataset: 30 proteins of ~400 residues, plus 2 mutated queries.
	dbFasta := filepath.Join(dir, "nr.fasta")
	runTool(t, genBin, "-kind", "protein", "-n", "30", "-len", "400", "-out", dbFasta)
	queryFasta := filepath.Join(dir, "q.fasta")
	runTool(t, genBin, "-kind", "protein", "-queries-from", dbFasta,
		"-n", "2", "-len", "120", "-sub", "0.05", "-indel", "0.0", "-out", queryFasta)

	// Two storage nodes with snapshot files.
	snap1 := filepath.Join(dir, "n1.snap")
	snap2 := filepath.Join(dir, "n2.snap")
	addr1, stop1 := startNode(t, nodeBin, "-addr", "127.0.0.1:0", "-data", snap1)
	addr2, stop2 := startNode(t, nodeBin, "-addr", "127.0.0.1:0", "-data", snap2)

	manifest := filepath.Join(dir, "cluster.mendel")
	out := runTool(t, cliBin, "index",
		"-nodes", addr1+","+addr2, "-groups", "2", "-kind", "protein",
		"-fasta", dbFasta, "-manifest", manifest)
	if !strings.Contains(out, "indexed 30 sequences") {
		t.Fatalf("index output:\n%s", out)
	}

	out = runTool(t, cliBin, "stats", "-manifest", manifest)
	if !strings.Contains(out, "2 nodes") || !strings.Contains(out, "30 sequences") {
		t.Fatalf("stats output:\n%s", out)
	}

	out = runTool(t, cliBin, "query", "-manifest", manifest, "-fasta", queryFasta)
	if !strings.Contains(out, "hits in") {
		t.Fatalf("query output:\n%s", out)
	}
	if strings.Contains(out, ": 0 hits") {
		t.Fatalf("query found nothing:\n%s", out)
	}

	// Checkpoint both nodes (SIGTERM writes snapshots) ...
	stop1()
	stop2()
	if fi, err := os.Stat(snap1); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot 1 missing: %v", err)
	}

	// ... restart on the SAME addresses and query without re-indexing.
	addr1b, stop1b := startNode(t, nodeBin, "-addr", addr1, "-data", snap1)
	defer stop1b()
	addr2b, stop2b := startNode(t, nodeBin, "-addr", addr2, "-data", snap2)
	defer stop2b()
	if addr1b != addr1 || addr2b != addr2 {
		t.Fatalf("restart changed addresses: %s %s", addr1b, addr2b)
	}
	out = runTool(t, cliBin, "query", "-manifest", manifest, "-fasta", queryFasta)
	if strings.Contains(out, ": 0 hits") {
		t.Fatalf("restarted cluster lost data:\n%s", out)
	}
}

// TestCLIObservability starts nodes with -metrics-addr, runs a query, and
// asserts the HTTP observability surface and the cluster-wide stats view
// both report the work: /metrics exposes RPC-server and search metrics,
// /debug/spans serves the node's span tree as JSON, and
// `mendel stats -metrics` merges every node's registry over the wire.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	dir := t.TempDir()
	nodeBin := buildTool(t, dir, "./cmd/mendel-node")
	cliBin := buildTool(t, dir, "./cmd/mendel")
	genBin := buildTool(t, dir, "./cmd/mendel-datagen")

	dbFasta := filepath.Join(dir, "nr.fasta")
	runTool(t, genBin, "-kind", "protein", "-n", "20", "-len", "300", "-out", dbFasta)
	queryFasta := filepath.Join(dir, "q.fasta")
	runTool(t, genBin, "-kind", "protein", "-queries-from", dbFasta,
		"-n", "1", "-len", "120", "-sub", "0.05", "-indel", "0.0", "-out", queryFasta)

	addr1, metrics1, stop1 := startNodeMetrics(t, nodeBin,
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	defer stop1()
	addr2, metrics2, stop2 := startNodeMetrics(t, nodeBin,
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	defer stop2()
	if metrics1 == "" {
		t.Fatal("mendel-node did not announce its metrics address")
	}

	manifest := filepath.Join(dir, "cluster.mendel")
	runTool(t, cliBin, "index",
		"-nodes", addr1+","+addr2, "-groups", "2", "-kind", "protein",
		"-fasta", dbFasta, "-manifest", manifest)
	out := runTool(t, cliBin, "query", "-manifest", manifest, "-fasta", queryFasta)
	if strings.Contains(out, ": 0 hits") {
		t.Fatalf("query found nothing:\n%s", out)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(url string) string {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
		}
		return string(body)
	}

	body := get(metrics1 + "/metrics")
	for _, want := range []string{"server_requests ", "node_local_searches ", "server_handle_ns_p95 "} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body = get(metrics1 + "/debug/spans?format=json")
	var spans []json.RawMessage
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/spans JSON invalid: %v\n%s", err, body)
	}
	if len(spans) == 0 || !strings.Contains(body, `"group_search"`) && !strings.Contains(body, `"local_search"`) {
		t.Fatalf("/debug/spans has no search spans:\n%s", body)
	}

	out = runTool(t, cliBin, "stats", "-manifest", manifest, "-metrics")
	if !strings.Contains(out, "cluster metrics (2/2 nodes reporting") {
		t.Fatalf("stats -metrics header wrong:\n%s", out)
	}
	for _, want := range []string{"node_local_searches", "server_handle_ns", "p95="} {
		if !strings.Contains(out, want) {
			t.Errorf("stats -metrics missing %q:\n%s", want, out)
		}
	}

	// mendel explain: one fully-sampled query whose assembled cross-node
	// span tree is rendered as a table naming the storage nodes.
	out = runTool(t, cliBin, "explain", "-manifest", manifest, "-q", queryFasta)
	for _, want := range []string{"trace ", "STAGE", "local_search", "per-node:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, addr1) && !strings.Contains(out, addr2) {
		t.Fatalf("explain table names no storage node:\n%s", out)
	}
	traceID := ""
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "trace "); ok {
			traceID = strings.Fields(rest)[0]
		}
	}
	if len(traceID) != 32 {
		t.Fatalf("explain printed no 32-hex trace ID:\n%s", out)
	}

	// Every node the query touched retains its spans under that trace and
	// serves them at /debug/trace/{id}; at least one must have been touched.
	served := 0
	for _, base := range []string{metrics1, metrics2} {
		resp, err := client.Get(base + "/debug/trace/" + traceID)
		if err != nil {
			t.Fatalf("GET trace from node: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			served++
			if !strings.Contains(string(body), traceID[:8]) && !strings.Contains(string(body), "_search") {
				t.Errorf("node trace body unexpected:\n%s", body)
			}
		}
	}
	if served == 0 {
		t.Fatalf("no node serves /debug/trace/%s", traceID)
	}

	// -log-json: the query lands a structured record on stderr stamped with
	// its trace ID (shape pinned by obs.TestLogOutputShape).
	out = runTool(t, cliBin, "query", "-manifest", manifest, "-fasta", queryFasta, "-log-json")
	if !strings.Contains(out, `"msg":"query"`) || !strings.Contains(out, `"trace_id":"`) {
		t.Fatalf("-log-json produced no trace-correlated record:\n%s", out)
	}
}

// metricValue parses the plain-text /metrics format ("name value" lines)
// and returns the named reading, or fails the test if absent.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s has non-integer value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestCLIServeGateway exercises the full serving path over real TCP: two
// mendel-node daemons, `mendel index`, then `mendel serve` fronting the
// cluster with the HTTP gateway. Concurrent HTTP clients all get correct
// answers, /v1/status and /metrics agree with what the clients observed,
// and a short `mendel-bench load` read mix sustains traffic with zero
// non-shed errors, leaving the gateway counters consistent with its report.
func TestCLIServeGateway(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	dir := t.TempDir()
	nodeBin := buildTool(t, dir, "./cmd/mendel-node")
	cliBin := buildTool(t, dir, "./cmd/mendel")
	genBin := buildTool(t, dir, "./cmd/mendel-datagen")
	benchBin := buildTool(t, dir, "./cmd/mendel-bench")

	dbFasta := filepath.Join(dir, "nr.fasta")
	runTool(t, genBin, "-kind", "protein", "-n", "24", "-len", "400", "-out", dbFasta)

	addr1, stop1 := startNode(t, nodeBin, "-addr", "127.0.0.1:0")
	defer stop1()
	addr2, stop2 := startNode(t, nodeBin, "-addr", "127.0.0.1:0")
	defer stop2()

	manifest := filepath.Join(dir, "cluster.mendel")
	runTool(t, cliBin, "index",
		"-nodes", addr1+","+addr2, "-groups", "2", "-kind", "protein",
		"-fasta", dbFasta, "-manifest", manifest)

	// `mendel serve` announces its bound address with the same
	// "listening on" line mendel-node uses, so the node starter doubles
	// as the gateway starter.
	gwAddr, stopGW := startNode(t, cliBin, "serve",
		"-manifest", manifest, "-addr", "127.0.0.1:0",
		"-max-inflight", "8", "-max-queue", "32")
	defer stopGW()
	base := "http://" + gwAddr
	client := &http.Client{Timeout: 15 * time.Second}

	// Queries are exact windows of the generated database, so every one
	// must land at least one hit.
	f, err := os.Open(dbFasta)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ReadFASTA(f, Protein)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]string, 8)
	for i := range queries {
		s := db.Seqs[i%len(db.Seqs)]
		queries[i] = string(s.Data[10:130])
	}

	const clients, perClient = 6, 4
	var (
		mu       sync.Mutex
		okCount  int
		hitTotal int
		wg       sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				q := queries[(c+r)%len(queries)]
				body, _ := json.Marshal(map[string]any{"query": q, "max_hits": 5})
				resp, err := client.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d\n%s", c, resp.StatusCode, data)
					return
				}
				var sr struct {
					Hits []struct {
						Name  string  `json:"name"`
						Cigar string  `json:"cigar"`
						Bits  float64 `json:"bits"`
					} `json:"hits"`
				}
				if err := json.Unmarshal(data, &sr); err != nil {
					t.Errorf("client %d: bad response JSON: %v\n%s", c, err, data)
					return
				}
				if len(sr.Hits) == 0 {
					t.Errorf("client %d: exact database window found no hits", c)
					return
				}
				if sr.Hits[0].Cigar == "" || sr.Hits[0].Bits <= 0 {
					t.Errorf("client %d: degenerate top hit %+v", c, sr.Hits[0])
					return
				}
				mu.Lock()
				okCount++
				hitTotal += len(sr.Hits)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if okCount != clients*perClient {
		t.Fatalf("%d/%d concurrent requests succeeded", okCount, clients*perClient)
	}

	// /v1/status reflects the indexed cluster and a drained gateway.
	resp, err := client.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		InFlight    int64  `json:"inflight"`
		MaxInFlight int    `json:"max_inflight"`
		Sequences   int    `json:"sequences"`
		Groups      int    `json:"groups"`
		Nodes       int    `json:"nodes"`
		Kind        string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Sequences != 24 || status.Groups != 2 || status.Nodes != 2 {
		t.Fatalf("status reports %d sequences / %d groups / %d nodes, want 24/2/2", status.Sequences, status.Groups, status.Nodes)
	}
	if status.MaxInFlight != 8 || status.InFlight != 0 {
		t.Fatalf("status admission view: inflight=%d max=%d, want 0/8", status.InFlight, status.MaxInFlight)
	}
	if status.Kind != "protein" {
		t.Fatalf("status kind = %q", status.Kind)
	}

	// The gateway's own counters agree exactly with what the clients saw.
	getMetrics := func() string {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: status %d", resp.StatusCode)
		}
		return string(body)
	}
	body := getMetrics()
	okBefore := metricValue(t, body, "gw_search_ok_total")
	if okBefore != int64(okCount) {
		t.Fatalf("gw_search_ok_total = %d, clients observed %d OK responses", okBefore, okCount)
	}
	if reqs := metricValue(t, body, "gw_requests_total"); reqs < int64(okCount) {
		t.Fatalf("gw_requests_total = %d < %d observed requests", reqs, okCount)
	}
	if v := metricValue(t, body, "gw_inflight"); v != 0 {
		t.Fatalf("gw_inflight = %d after drain", v)
	}

	// A short open-loop read mix against the live gateway: it must sustain
	// traffic with zero non-shed errors, and the gateway counter delta must
	// match the harness's own accounting.
	benchJSON := filepath.Join(dir, "bench_load.json")
	out := runTool(t, benchBin, "load",
		"-url", base, "-rate", "40", "-duration", "2s", "-mix", "read",
		"-qlen", "64", "-seed", "1", "-json", benchJSON)
	if !strings.Contains(out, "sent") {
		t.Fatalf("bench load output:\n%s", out)
	}
	data, err := os.ReadFile(benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	var load struct {
		Sent         int64   `json:"sent"`
		OK           int64   `json:"ok"`
		Shed         int64   `json:"shed"`
		Deadline     int64   `json:"deadline"`
		Errors       int64   `json:"errors"`
		SustainedQPS float64 `json:"sustained_qps"`
		P95Ms        float64 `json:"p95_ms"`
	}
	if err := json.Unmarshal(data, &load); err != nil {
		t.Fatalf("bench JSON artifact: %v\n%s", err, data)
	}
	if load.Sent < 40 || load.OK == 0 {
		t.Fatalf("load harness barely ran: %+v", load)
	}
	if load.Errors != 0 {
		t.Fatalf("%d non-shed errors from live gateway under read mix:\n%s", load.Errors, data)
	}
	if load.SustainedQPS <= 0 || load.P95Ms <= 0 {
		t.Fatalf("degenerate load result: %+v", load)
	}
	okAfter := metricValue(t, getMetrics(), "gw_search_ok_total")
	if okAfter-okBefore != load.OK {
		t.Fatalf("gateway counted %d successful searches during load, harness counted %d", okAfter-okBefore, load.OK)
	}
}

// TestCLITelemetryDashboard exercises the windowed-telemetry surface over
// real TCP processes: mendel-node samplers answer the coordinator's history
// pulls, `mendel serve` exposes /metrics/history and /debug/slo, and the
// dashboards — `mendel top -once` over both transports and
// `mendel stats -watch` — render live cluster state from the same rings.
func TestCLITelemetryDashboard(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	dir := t.TempDir()
	nodeBin := buildTool(t, dir, "./cmd/mendel-node")
	cliBin := buildTool(t, dir, "./cmd/mendel")
	genBin := buildTool(t, dir, "./cmd/mendel-datagen")

	dbFasta := filepath.Join(dir, "nr.fasta")
	runTool(t, genBin, "-kind", "protein", "-n", "20", "-len", "300", "-out", dbFasta)
	queryFasta := filepath.Join(dir, "q.fasta")
	runTool(t, genBin, "-kind", "protein", "-queries-from", dbFasta,
		"-n", "2", "-len", "120", "-sub", "0.05", "-indel", "0.0", "-out", queryFasta)

	// Fast sampling so the rings fill within the test's patience.
	addr1, stop1 := startNode(t, nodeBin, "-addr", "127.0.0.1:0", "-sample-interval", "100ms")
	defer stop1()
	addr2, stop2 := startNode(t, nodeBin, "-addr", "127.0.0.1:0", "-sample-interval", "100ms")
	defer stop2()

	manifest := filepath.Join(dir, "cluster.mendel")
	runTool(t, cliBin, "index",
		"-nodes", addr1+","+addr2, "-groups", "2", "-kind", "protein",
		"-fasta", dbFasta, "-manifest", manifest)

	gwAddr, stopGW := startNode(t, cliBin, "serve",
		"-manifest", manifest, "-addr", "127.0.0.1:0",
		"-sample-interval", "100ms",
		"-slo-p95", "10s", "-slo-shed-rate", "0.5", "-slo-fast", "2s", "-slo-slow", "5s")
	defer stopGW()
	base := "http://" + gwAddr
	client := &http.Client{Timeout: 5 * time.Second}

	// Light traffic through the gateway so the windows hold real activity.
	for i := 0; i < 4; i++ {
		body := []byte(`{"query":"` + strings.Repeat("ACDEFGHIKL", 8) + `","max_hits":3}`)
		resp, err := client.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// /metrics/history: the coordinator merges its own ring with the nodes'.
	// Poll until a few samples land (the sampler ticks every 100ms).
	var ch struct {
		Merged struct {
			Points []json.RawMessage
		}
		Nodes []struct{ Node string }
		Down  []string
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/metrics/history?window=30s&nodes=1")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics/history: status %d\n%s", resp.StatusCode, body)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("/metrics/history Cache-Control = %q, want no-store", cc)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Fatalf("/metrics/history Content-Type = %q", ct)
		}
		if err := json.Unmarshal(body, &ch); err != nil {
			t.Fatalf("/metrics/history JSON invalid: %v\n%s", err, body)
		}
		if len(ch.Merged.Points) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never filled: %d points\n%s", len(ch.Merged.Points), body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if len(ch.Down) != 0 {
		t.Fatalf("down nodes reported: %v", ch.Down)
	}
	// Per-node breakdown: both storage nodes plus the coordinator's own ring.
	names := map[string]bool{}
	for _, n := range ch.Nodes {
		names[n.Node] = true
	}
	if !names[addr1] || !names[addr2] || !names["coordinator"] {
		t.Fatalf("per-node breakdown = %v, want both nodes + coordinator", names)
	}

	// /debug/slo: configured objectives evaluated, healthy traffic → ok.
	resp, err := client.Get(base + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	sloBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/slo: status %d\n%s", resp.StatusCode, sloBody)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("/debug/slo Cache-Control = %q, want no-store", cc)
	}
	var slo struct {
		Level      string
		Objectives []struct{ Name string }
	}
	if err := json.Unmarshal(sloBody, &slo); err != nil {
		t.Fatalf("/debug/slo JSON invalid: %v\n%s", err, sloBody)
	}
	if slo.Level != "ok" {
		t.Fatalf("healthy cluster SLO level = %q, want ok\n%s", slo.Level, sloBody)
	}
	if len(slo.Objectives) != 2 {
		t.Fatalf("objectives = %d (%s), want p95 + shed_rate", len(slo.Objectives), sloBody)
	}

	// `mendel top -once` over HTTP: one frame with the cluster row, the
	// per-node table and the SLO section.
	out := runTool(t, cliBin, "top", "-once", "-url", base, "-window", "30s")
	for _, want := range []string{"mendel top — ", "cluster  qps=", "NODE", "coordinator", "slo: OK", "search_p95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("top -once -url output missing %q:\n%s", want, out)
		}
	}

	// `mendel top -once` over RPC: polls the node rings directly, no serve
	// process involved; both storage nodes must appear.
	out = runTool(t, cliBin, "top", "-once", "-manifest", manifest, "-window", "30s")
	if !strings.Contains(out, addr1) || !strings.Contains(out, addr2) {
		t.Fatalf("top -once -manifest names no storage node:\n%s", out)
	}

	// `mendel stats -watch` re-renders in place and adds the windowed view
	// from the same history rings.
	out = runToolFor(t, 1500*time.Millisecond, cliBin, "stats", "-manifest", manifest, "-watch", "300ms")
	if !strings.Contains(out, "2 nodes") {
		t.Fatalf("stats -watch lost the cumulative view:\n%s", out)
	}
	if !strings.Contains(out, "rps=") || !strings.Contains(out, "last 30s") {
		t.Fatalf("stats -watch missing the windowed section:\n%s", out)
	}
	if !strings.Contains(out, "\x1b[2J") {
		t.Fatalf("stats -watch never re-rendered in place:\n%s", out)
	}
}

// TestNodeServerHistoryShutdownGoroutines is the CLI-side goroutine-leak
// assertion: a NodeServer with the full observability stack attached —
// registry, default sampler from Observe, then a replacement sampler from
// StartHistory — must release every goroutine on Close. Guards the exact
// lifecycle mendel-node runs.
func TestNodeServerHistoryShutdownGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	func() {
		srv, err := ServeNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reg := NewMetricsRegistry()
		srv.Observe(reg, NewQueryTracer(0)) // auto-starts the default sampler
		series := srv.StartHistory(reg, TimeSeriesConfig{Interval: 5 * time.Millisecond, Capacity: 32})
		for series.Samples() < 3 {
			time.Sleep(time.Millisecond)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
